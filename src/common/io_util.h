#ifndef FM_COMMON_IO_UTIL_H_
#define FM_COMMON_IO_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fm::io {

/// Byte-level encode/decode and durable-file helpers shared by the serving
/// layer's write-ahead log and snapshot files (src/serve/wal.*,
/// src/serve/snapshot.*).
///
/// All multi-byte integers are little-endian on disk regardless of host
/// order, and doubles are stored as the little-endian bytes of their IEEE-754
/// bit pattern — the on-disk format round-trips every double bit-for-bit
/// (including -0.0 and NaN payloads), which is what lets recovery reproduce
/// the serving layer's byte-determinism contract (docs/DETERMINISM.md).

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes. Used as the
/// integrity check on WAL records and snapshot payloads: a torn or
/// bit-rotted tail fails its CRC and recovery truncates to the last valid
/// prefix instead of replaying garbage.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

// Little-endian append helpers.
void AppendU8(std::string* out, uint8_t value);
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);
/// Appends the IEEE-754 bit pattern; exact round-trip for every double.
void AppendDouble(std::string* out, double value);
void AppendBytes(std::string* out, const void* data, size_t size);
/// AppendU64 length prefix + raw bytes.
void AppendLengthPrefixed(std::string* out, const std::string& bytes);
/// Appends `count` doubles' bit patterns (no length prefix).
void AppendDoubleArray(std::string* out, const double* values, size_t count);

/// Bounds-checked sequential reader over a byte buffer. Every read fails
/// with kIoError instead of running past the end, so a truncated or
/// corrupted buffer surfaces as a Status, never as undefined behavior. The
/// reader does not own the buffer; it must outlive the reader.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  size_t remaining() const { return size_ - offset_; }
  bool empty() const { return offset_ == size_; }
  size_t offset() const { return offset_; }

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadDouble(double* out);
  Status ReadBytes(void* out, size_t size);
  /// ReadU64 length prefix + that many raw bytes.
  Status ReadLengthPrefixed(std::string* out);
  /// Reads `count` doubles into `out` (resized to `count`).
  Status ReadDoubleArray(std::vector<double>* out, size_t count);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

/// Reads a whole file into `out`. kNotFound when the file does not exist,
/// typed errors otherwise. EINTR-safe (bounded retry, common/io_env.h);
/// forwards to the Env seam against the default POSIX environment — code
/// that needs fault injection takes an io::Env explicitly.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path` atomically: write to `<path>.tmp`, optionally
/// fsync, then rename over the target (and fsync the directory so the rename
/// itself is durable). A crash mid-write leaves either the old file or the
/// new one, never a torn mixture — the snapshot files' durability story.
/// With `sync` false the fsyncs are skipped (fast mode for tests/CI; the
/// rename is still atomic against process crashes, just not power loss).
/// On ANY failure (open/write/fsync/close/rename) the tmp file is unlinked
/// before returning; the fsync result is checked before the rename.
Status WriteFileAtomic(const std::string& path, const std::string& contents,
                       bool sync);

/// Creates `path` (and parents) as a directory; OK if it already exists.
Status CreateDirectories(const std::string& path);

/// The plain-file entries of `path` (names, not full paths), sorted.
Result<std::vector<std::string>> ListDirectory(const std::string& path);

/// Removes a file; OK if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// Truncates the file at `path` to `size` bytes (test/crash-injection
/// helper; also used by WAL recovery to drop a torn tail).
Status TruncateFile(const std::string& path, uint64_t size);

/// Size of the file at `path` in bytes.
Result<uint64_t> FileSize(const std::string& path);

/// fsync(2) on an open descriptor, as a Status.
Status SyncFd(int fd);

}  // namespace fm::io

#endif  // FM_COMMON_IO_UTIL_H_
