#ifndef FM_COMMON_LOGGING_H_
#define FM_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace fm {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted. Defaults to kInfo, or the value
/// of the FM_LOG_LEVEL environment variable (debug|info|warning|error) when
/// set at startup.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log statement collector; flushes to stderr on destruction.
/// Use via the FM_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Per-call-site counter backing FM_LOG_EVERY_N. Thread-safe; also usable
/// directly as a member when a class wants explicit rate-limit state
/// (e.g. Service's degraded-mode rejection warnings).
class LogEveryNState {
 public:
  /// Counts one occurrence; true on the 1st, (n+1)th, (2n+1)th, …
  /// occurrence (every occurrence when n <= 1).
  bool ShouldLog(uint64_t n) {
    const uint64_t count = counter_.fetch_add(1, std::memory_order_relaxed);
    return n <= 1 || count % n == 0;
  }

  /// Occurrences seen so far (logged + suppressed).
  uint64_t occurrences() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> counter_{0};
};

}  // namespace internal
}  // namespace fm

/// Emits a log record: FM_LOG(kInfo) << "built " << n << " coefficients";
#define FM_LOG(severity)                                              \
  ::fm::internal::LogMessage(::fm::LogLevel::severity, __FILE__, __LINE__)

/// Rate-limited log record: emits on the 1st and every n-th occurrence of
/// this call site, so repeating conditions (degraded-mode rejection
/// floods, per-batch retry warnings) cannot spam the log. Must be used as
/// a standalone statement:
///   FM_LOG_EVERY_N(kWarning, 256) << "rejecting mutation: " << reason;
#define FM_LOG_EVERY_N(severity, n)                                   \
  if (static ::fm::internal::LogEveryNState fm_log_every_n_state;     \
      fm_log_every_n_state.ShouldLog(n))                              \
  FM_LOG(severity)

/// Aborts the process with a message when `condition` is false. Used for
/// programmer errors (API misuse), never for data-dependent failures — those
/// return fm::Status.
#define FM_CHECK(condition)                                                  \
  do {                                                                       \
    if (!(condition)) {                                                      \
      ::fm::internal::LogMessage(::fm::LogLevel::kError, __FILE__, __LINE__) \
          << "FM_CHECK failed: " #condition;                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

/// Debug-only FM_CHECK for hot accessors (Matrix::At, Vector::At, row
/// views): full bounds checking in Debug and ASan/UBSan builds (where
/// NDEBUG is unset — the CI Debug and asan jobs), compiled out of Release
/// hot paths. Cold-path API contracts should keep FM_CHECK. The argument is
/// never evaluated in Release (`sizeof` keeps it syntactically checked
/// without generating code).
#ifdef NDEBUG
#define FM_DCHECK(condition)             \
  do {                                   \
    (void)sizeof((condition) ? 1 : 0);   \
  } while (false)
#else
#define FM_DCHECK(condition) FM_CHECK(condition)
#endif

#endif  // FM_COMMON_LOGGING_H_
