#ifndef FM_COMMON_LOGGING_H_
#define FM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fm {

/// Log severities in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted. Defaults to kInfo, or the value
/// of the FM_LOG_LEVEL environment variable (debug|info|warning|error) when
/// set at startup.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log statement collector; flushes to stderr on destruction.
/// Use via the FM_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fm

/// Emits a log record: FM_LOG(kInfo) << "built " << n << " coefficients";
#define FM_LOG(severity)                                              \
  ::fm::internal::LogMessage(::fm::LogLevel::severity, __FILE__, __LINE__)

/// Aborts the process with a message when `condition` is false. Used for
/// programmer errors (API misuse), never for data-dependent failures — those
/// return fm::Status.
#define FM_CHECK(condition)                                                  \
  do {                                                                       \
    if (!(condition)) {                                                      \
      ::fm::internal::LogMessage(::fm::LogLevel::kError, __FILE__, __LINE__) \
          << "FM_CHECK failed: " #condition;                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

/// Debug-only FM_CHECK for hot accessors (Matrix::At, Vector::At, row
/// views): full bounds checking in Debug and ASan/UBSan builds (where
/// NDEBUG is unset — the CI Debug and asan jobs), compiled out of Release
/// hot paths. Cold-path API contracts should keep FM_CHECK. The argument is
/// never evaluated in Release (`sizeof` keeps it syntactically checked
/// without generating code).
#ifdef NDEBUG
#define FM_DCHECK(condition)             \
  do {                                   \
    (void)sizeof((condition) ? 1 : 0);   \
  } while (false)
#else
#define FM_DCHECK(condition) FM_CHECK(condition)
#endif

#endif  // FM_COMMON_LOGGING_H_
