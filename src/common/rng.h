#ifndef FM_COMMON_RNG_H_
#define FM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fm {

/// Deterministic pseudo-random number generator used throughout the library.
///
/// Wraps the SplitMix64/xoshiro256++ pair: a 64-bit seed is expanded with
/// SplitMix64 into the 256-bit xoshiro state. The generator is explicitly
/// seeded everywhere in this codebase — experiments derive per-trial seeds
/// from a root seed so that every figure is exactly reproducible.
///
/// `Rng` satisfies the C++ UniformRandomBitGenerator concept, so it can be
/// used with <random> distributions, but the library provides its own
/// distribution methods to keep results identical across standard libraries.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Two generators built from the
  /// same seed produce identical streams.
  explicit Rng(uint64_t seed = 0xF0E1D2C3B4A59687ull) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Returns the next 64 random bits.
  uint64_t Next();

  // UniformRandomBitGenerator interface.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }
  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via the Marsaglia polar method.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Zero-mean Laplace sample with the given scale b (pdf (1/2b)e^{-|x|/b}),
  /// drawn via inverse-CDF. This is the paper's Lap(b).
  double Laplace(double scale);

  /// Exponential with the given rate lambda (mean 1/lambda).
  double Exponential(double rate);

  /// Gamma(shape k, scale theta) via Marsaglia–Tsang (k >= 1 fast path,
  /// boosting for k < 1).
  double Gamma(double shape, double scale);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Non-positive weights are treated as zero; if all weights are
  /// zero the index is uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child seed. Used to fan out deterministic seeds
  /// for sub-components (one stream per trial/fold/mechanism).
  uint64_t Fork();

  /// Stateless substream derivation: mixes `seed` with `task_id` into an
  /// independent child seed. The parallel experiment engine gives every
  /// task (fold, repetition, sweep point) its own `Rng(Fork(seed, task))`
  /// so results are bit-identical for every thread count. Unlike
  /// DeriveSeed, Fork finalizes through two SplitMix64 rounds, so the
  /// substream family is disjoint from the DeriveSeed family even at equal
  /// (seed, index) arguments.
  static uint64_t Fork(uint64_t seed, uint64_t task_id);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Mixes a root seed with a stream index into a new seed. Stateless helper for
/// deriving per-trial seeds: `DeriveSeed(root, trial)`.
uint64_t DeriveSeed(uint64_t root, uint64_t stream);

}  // namespace fm

#endif  // FM_COMMON_RNG_H_
