#ifndef FM_COMMON_FAULT_ENV_H_
#define FM_COMMON_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io_env.h"
#include "common/thread_annotations.h"

namespace fm::io {

/// Per-operation fault probabilities for FaultInjectingEnv. All decisions
/// are drawn from Rng::Fork(seed, op_ordinal) — a pure function of (seed,
/// how many filesystem operations happened before), never the wall clock —
/// so a fault schedule replays bit-identically whenever the IO sequence
/// does (the `fuzz_determinism --faults` contract, docs/FAULTS.md).
struct FaultProfile {
  uint64_t seed = 0;

  // Write faults (File::Write).
  double write_error = 0.0;   ///< EIO: unrecoverable, poisons the WAL.
  double write_enospc = 0.0;  ///< ENOSPC: opens an out-of-space window.
  double write_eintr = 0.0;   ///< EINTR: transient, retried.
  double write_short = 0.0;   ///< short write (half the bytes), retried.

  double sync_error = 0.0;    ///< fsync fails (File::Sync, SyncDirectory).
  double open_error = 0.0;    ///< Env::Open fails with EIO.
  double read_error = 0.0;    ///< File::Read fails with EIO.
  double rename_error = 0.0;  ///< Env::RenameFile fails with EIO.
  double truncate_error = 0.0;  ///< File::Truncate / Env::TruncateFile EIO.

  /// After an injected ENOSPC, every write for this many further env
  /// operations keeps failing ENOSPC ("the volume is full"); then space
  /// returns — which is what gives Service::TryResume() something real to
  /// probe.
  uint64_t enospc_window_ops = 24;

  /// Cap on consecutively injected transient faults (EINTR/short) so the
  /// bounded retry loop (kMaxTransientRetries) always eventually wins.
  int max_consecutive_transients = 4;
};

/// Counters proving faults actually fired (harness coverage reporting).
struct FaultCounts {
  uint64_t ops = 0;    ///< faultable operations seen while armed or not
  uint64_t total = 0;  ///< faults injected, all kinds
  uint64_t write_error = 0;
  uint64_t write_enospc = 0;
  uint64_t write_eintr = 0;
  uint64_t write_short = 0;
  uint64_t sync_error = 0;
  uint64_t open_error = 0;
  uint64_t read_error = 0;
  uint64_t rename_error = 0;
  uint64_t truncate_error = 0;
};

/// An Env decorator that deterministically injects storage faults into the
/// operations it forwards to `base`.
///
/// Scope of injection — and what is deliberately left reliable:
///  - Open/Read/Write/Sync/Truncate/Rename/SyncDirectory can fault.
///  - Close never faults (POSIX close releases the descriptor regardless).
///  - RemoveFileIfExists / CreateDirectories / ListDirectory / FileSize
///    never fault: they are the cleanup and introspection primitives the
///    containment guarantees are built on (e.g. WriteFileAtomic's
///    unlink-tmp-on-error), and a harness that could break its own janitor
///    would prove nothing.
///
/// `set_armed(false)` passes everything through untouched (op ordinals
/// still advance) — used during setup and recovery so a fault schedule
/// only exercises the serving window.
class FaultInjectingEnv final : public Env {
 public:
  FaultInjectingEnv(Env& base, const FaultProfile& profile);

  void set_armed(bool armed);
  bool armed() const;
  FaultCounts counts() const;

  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     OpenMode mode) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDirectory(const std::string& path) override;
  Status CreateDirectories(const std::string& path) override;
  Result<std::vector<std::string>> ListDirectory(
      const std::string& path) override;
  Status RemoveFileIfExists(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Result<uint64_t> FileSize(const std::string& path) override;

 private:
  friend class FaultInjectingFile;

  enum class WriteFault { kNone, kError, kEnospc, kEintr, kShort };

  // Each Decide* consumes one op ordinal and rolls the profile's dice for
  // that operation kind. Thread-safe (one mutex; the WAL serializes its own
  // IO anyway, but snapshot writes may interleave in other callers).
  WriteFault DecideWrite();
  bool DecideSync();
  bool DecideOpen();
  bool DecideRead();
  bool DecideRename();
  bool DecideTruncate();

  // Rolls a Bernoulli(p) for op ordinal `n`; no fault while disarmed.
  bool RollLocked(double p, uint64_t n) FM_REQUIRES(mutex_);

  Env& base_;
  const FaultProfile profile_;
  mutable Mutex mutex_;
  bool armed_ FM_GUARDED_BY(mutex_) = false;
  FaultCounts counts_ FM_GUARDED_BY(mutex_);
  /// Writes before this op ordinal fail ENOSPC (0 = volume has space).
  uint64_t space_returns_at_op_ FM_GUARDED_BY(mutex_) = 0;
  int consecutive_transients_ FM_GUARDED_BY(mutex_) = 0;
};

}  // namespace fm::io

#endif  // FM_COMMON_FAULT_ENV_H_
