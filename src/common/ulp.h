#ifndef FM_COMMON_ULP_H_
#define FM_COMMON_ULP_H_

#include <cstdint>
#include <cstring>
#include <limits>

namespace fm {

/// Distance between two doubles in units in the last place, via the
/// lexicographically ordered integer representation of IEEE-754 doubles.
/// 0 iff a == b (including +0 vs −0); max<uint64_t> when either is NaN.
///
/// This is the yardstick for the library's accuracy contracts — the fold
/// cache's and the serving layer's "within 1 ulp per coefficient of direct
/// construction" guarantees (core/objective_accumulator.h,
/// serve/incremental_objective.h) — shared by the tests and the
/// self-checking examples so every consumer asserts the same criterion.
inline uint64_t UlpDistance(double a, double b) {
  if (a == b) return 0;
  if (a != a || b != b) {  // NaN
    return std::numeric_limits<uint64_t>::max();
  }
  auto ordered = [](double d) {
    int64_t i;
    std::memcpy(&i, &d, sizeof(i));
    return i < 0 ? std::numeric_limits<int64_t>::min() - i : i;
  };
  const int64_t ia = ordered(a);
  const int64_t ib = ordered(b);
  return ia > ib ? static_cast<uint64_t>(ia) - static_cast<uint64_t>(ib)
                 : static_cast<uint64_t>(ib) - static_cast<uint64_t>(ia);
}

}  // namespace fm

#endif  // FM_COMMON_ULP_H_
