#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace fm {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("FM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStore().load());
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= LevelStore().load()), level_(level) {
  if (enabled_) {
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << LevelName(level_) << " " << (base ? base + 1 : file)
            << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace fm
