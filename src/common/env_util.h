#ifndef FM_COMMON_ENV_UTIL_H_
#define FM_COMMON_ENV_UTIL_H_

#include <cstdint>
#include <string>

namespace fm {

/// Returns the environment variable `name` parsed as a double, or
/// `default_value` when unset or unparsable.
double GetEnvDouble(const char* name, double default_value);

/// Returns the environment variable `name` parsed as int64, or
/// `default_value` when unset or unparsable.
int64_t GetEnvInt64(const char* name, int64_t default_value);

/// Returns the environment variable `name`, or `default_value` when unset.
std::string GetEnvString(const char* name, const std::string& default_value);

}  // namespace fm

#endif  // FM_COMMON_ENV_UTIL_H_
