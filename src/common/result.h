#ifndef FM_COMMON_RESULT_H_
#define FM_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fm {

/// A value-or-error container in the style of `arrow::Result<T>`.
///
/// Either holds a `T` (and an OK status) or a non-OK `Status`. Accessing the
/// value of an errored result aborts the process; call `ok()` first or use
/// `FM_ASSIGN_OR_RETURN`.
///
/// [[nodiscard]] like Status: a dropped Result is a dropped error (and a
/// dropped value). See tools/fm_lint.py, rule fm-discarded-status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Constructs an errored result. Aborts if `status` is OK — an OK result
  /// must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result<T> constructed from OK status without a value\n";
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK iff a value is present.
  const Status& status() const { return status_; }

  /// Returns the contained value. Aborts when `!ok()`.
  const T& ValueOrDie() const& {
    EnsureOk();
    return *value_;
  }
  T& ValueOrDie() & {
    EnsureOk();
    return *value_;
  }
  T ValueOrDie() && {
    EnsureOk();
    return std::move(*value_);
  }

  /// Alias matching the std::expected spelling.
  const T& value() const& { return ValueOrDie(); }
  T& value() & { return ValueOrDie(); }
  T value() && { return std::move(*this).ValueOrDie(); }

  /// Returns the value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "Result<T>::ValueOrDie on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace fm

/// Evaluates `rexpr` (a Result<T>), propagating its status on error and
/// otherwise binding the contained value to `lhs`.
#define FM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define FM_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define FM_ASSIGN_OR_RETURN_NAME(x, y) FM_ASSIGN_OR_RETURN_CONCAT(x, y)
#define FM_ASSIGN_OR_RETURN(lhs, rexpr) \
  FM_ASSIGN_OR_RETURN_IMPL(             \
      FM_ASSIGN_OR_RETURN_NAME(_fm_result_, __COUNTER__), lhs, rexpr)

#endif  // FM_COMMON_RESULT_H_
