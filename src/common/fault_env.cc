#include "common/fault_env.h"

#include <cerrno>
#include <utility>

#include "common/rng.h"

namespace fm::io {

/// File decorator: forwards to the wrapped file, asking the owning env for
/// a (deterministic) fault decision first. Lifetime: the env must outlive
/// every file it opened, which the durability layer guarantees (the env is
/// owned by the test/harness that owns the service).
class FaultInjectingFile final : public File {
 public:
  FaultInjectingFile(std::unique_ptr<File> base, FaultInjectingEnv* env,
                     std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  Result<size_t> Read(void* out, size_t size) override {
    if (env_->DecideRead()) {
      return ErrnoStatus("read failed (injected) for", path_, EIO);
    }
    return base_->Read(out, size);
  }

  Result<size_t> Write(const void* data, size_t size) override {
    switch (env_->DecideWrite()) {
      case FaultInjectingEnv::WriteFault::kNone:
        break;
      case FaultInjectingEnv::WriteFault::kError:
        return ErrnoStatus("write failed (injected) for", path_, EIO);
      case FaultInjectingEnv::WriteFault::kEnospc:
        return ErrnoStatus("write failed (injected) for", path_, ENOSPC);
      case FaultInjectingEnv::WriteFault::kEintr:
        return ErrnoStatus("write failed (injected) for", path_, EINTR);
      case FaultInjectingEnv::WriteFault::kShort: {
        // A real short write leaves a prefix on disk; mirror that by
        // actually writing half, so retry-resumption is exercised against
        // true file state, not a simulation of it.
        const size_t half = size / 2;
        if (half == 0) break;
        return base_->Write(data, half);
      }
    }
    return base_->Write(data, size);
  }

  Status Sync() override {
    if (env_->DecideSync()) {
      return ErrnoStatus("fsync failed (injected) for", path_, EIO);
    }
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override {
    if (env_->DecideTruncate()) {
      return ErrnoStatus("ftruncate failed (injected) for", path_, EIO);
    }
    return base_->Truncate(size);
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<File> base_;
  FaultInjectingEnv* env_;
  std::string path_;
};

FaultInjectingEnv::FaultInjectingEnv(Env& base, const FaultProfile& profile)
    : base_(base), profile_(profile) {}

void FaultInjectingEnv::set_armed(bool armed) {
  MutexLock lock(mutex_);
  armed_ = armed;
}

bool FaultInjectingEnv::armed() const {
  MutexLock lock(mutex_);
  return armed_;
}

FaultCounts FaultInjectingEnv::counts() const {
  MutexLock lock(mutex_);
  return counts_;
}

bool FaultInjectingEnv::RollLocked(double p, uint64_t n) {
  if (!armed_ || p <= 0.0) return false;
  Rng rng(Rng::Fork(profile_.seed, n));
  return rng.Bernoulli(p);
}

FaultInjectingEnv::WriteFault FaultInjectingEnv::DecideWrite() {
  MutexLock lock(mutex_);
  const uint64_t n = counts_.ops++;
  if (!armed_) return WriteFault::kNone;
  if (n < space_returns_at_op_) {
    // Inside an out-of-space window: the volume stays full no matter what
    // is written until `enospc_window_ops` operations pass.
    ++counts_.total;
    ++counts_.write_enospc;
    return WriteFault::kEnospc;
  }
  Rng rng(Rng::Fork(profile_.seed, n));
  // Fixed draw order keeps the schedule a pure function of (seed, op).
  const bool eintr = rng.Bernoulli(profile_.write_eintr);
  const bool short_write = rng.Bernoulli(profile_.write_short);
  const bool enospc = rng.Bernoulli(profile_.write_enospc);
  const bool error = rng.Bernoulli(profile_.write_error);
  if (eintr || short_write) {
    if (consecutive_transients_ < profile_.max_consecutive_transients) {
      ++consecutive_transients_;
      ++counts_.total;
      if (eintr) {
        ++counts_.write_eintr;
        return WriteFault::kEintr;
      }
      ++counts_.write_short;
      return WriteFault::kShort;
    }
    // Cap hit: let this attempt through so the bounded retry loop
    // (kMaxTransientRetries) always eventually succeeds.
  }
  consecutive_transients_ = 0;
  if (enospc) {
    space_returns_at_op_ = n + 1 + profile_.enospc_window_ops;
    ++counts_.total;
    ++counts_.write_enospc;
    return WriteFault::kEnospc;
  }
  if (error) {
    ++counts_.total;
    ++counts_.write_error;
    return WriteFault::kError;
  }
  return WriteFault::kNone;
}

bool FaultInjectingEnv::DecideSync() {
  MutexLock lock(mutex_);
  const uint64_t n = counts_.ops++;
  consecutive_transients_ = 0;
  if (!RollLocked(profile_.sync_error, n)) return false;
  ++counts_.total;
  ++counts_.sync_error;
  return true;
}

bool FaultInjectingEnv::DecideOpen() {
  MutexLock lock(mutex_);
  const uint64_t n = counts_.ops++;
  if (!RollLocked(profile_.open_error, n)) return false;
  ++counts_.total;
  ++counts_.open_error;
  return true;
}

bool FaultInjectingEnv::DecideRead() {
  MutexLock lock(mutex_);
  const uint64_t n = counts_.ops++;
  if (!RollLocked(profile_.read_error, n)) return false;
  ++counts_.total;
  ++counts_.read_error;
  return true;
}

bool FaultInjectingEnv::DecideRename() {
  MutexLock lock(mutex_);
  const uint64_t n = counts_.ops++;
  if (!RollLocked(profile_.rename_error, n)) return false;
  ++counts_.total;
  ++counts_.rename_error;
  return true;
}

bool FaultInjectingEnv::DecideTruncate() {
  MutexLock lock(mutex_);
  const uint64_t n = counts_.ops++;
  if (!RollLocked(profile_.truncate_error, n)) return false;
  ++counts_.total;
  ++counts_.truncate_error;
  return true;
}

Result<std::unique_ptr<File>> FaultInjectingEnv::Open(const std::string& path,
                                                      OpenMode mode) {
  if (DecideOpen()) {
    return ErrnoStatus("open failed (injected) for", path, EIO);
  }
  Result<std::unique_ptr<File>> base = base_.Open(path, mode);
  if (!base.ok()) return base.status();
  return std::unique_ptr<File>(
      new FaultInjectingFile(std::move(base).ValueOrDie(), this, path));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (DecideRename()) {
    return ErrnoStatus("rename failed (injected) for", from, EIO);
  }
  return base_.RenameFile(from, to);
}

Status FaultInjectingEnv::SyncDirectory(const std::string& path) {
  if (DecideSync()) {
    return ErrnoStatus("fsync failed (injected) for", path, EIO);
  }
  return base_.SyncDirectory(path);
}

Status FaultInjectingEnv::CreateDirectories(const std::string& path) {
  return base_.CreateDirectories(path);
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDirectory(
    const std::string& path) {
  return base_.ListDirectory(path);
}

Status FaultInjectingEnv::RemoveFileIfExists(const std::string& path) {
  return base_.RemoveFileIfExists(path);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  if (DecideTruncate()) {
    return ErrnoStatus("truncate failed (injected) for", path, EIO);
  }
  return base_.TruncateFile(path, size);
}

Result<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_.FileSize(path);
}

}  // namespace fm::io
