#ifndef FM_COMMON_IO_ENV_H_
#define FM_COMMON_IO_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fm::io {

/// Injectable filesystem seam for the durability layer (docs/FAULTS.md).
///
/// Every open/read/write/fsync/rename/truncate the WAL and snapshot code
/// performs goes through an `Env`, so tests and the `fuzz_determinism
/// --faults` harness can substitute a `FaultInjectingEnv`
/// (common/fault_env.h) that deterministically injects ENOSPC, EIO, EINTR,
/// short writes, and failed fsyncs. `Env::Default()` is a thin POSIX
/// passthrough with the exact syscall behavior the layer used before the
/// seam existed — the no-fault path is bit-identical.
///
/// `File::Write` and `File::Read` intentionally mirror write(2)/read(2):
/// they may transfer fewer bytes than asked (short write/read) and fail
/// with a transient `kUnavailable` on EINTR. Callers that need all-or-error
/// semantics use `FullWrite`/`FullRead` below, which add the bounded
/// deterministic retry loop.

/// An open file handle. Close() (or destruction) releases the descriptor;
/// destruction without Close() closes silently, dropping any error.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `size` bytes into `out`; returns the byte count (0 at EOF).
  /// May read short; EINTR surfaces as kUnavailable.
  virtual Result<size_t> Read(void* out, size_t size) = 0;

  /// Writes up to `size` bytes from `data`; returns the byte count actually
  /// written. May write short (e.g. a filling volume); EINTR surfaces as
  /// kUnavailable, ENOSPC/EDQUOT as kResourceExhausted.
  virtual Result<size_t> Write(const void* data, size_t size) = 0;

  /// fsync(2). A failure here means the kernel may already have DROPPED the
  /// dirty pages (fsyncgate) — callers must not retry the sync and must not
  /// acknowledge the data; see Wal poisoning in docs/FAULTS.md.
  virtual Status Sync() = 0;

  /// ftruncate(2) to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// close(2). Safe to call once; reports the close error if any.
  virtual Status Close() = 0;
};

enum class OpenMode {
  kRead,           ///< O_RDONLY; kNotFound if the file does not exist.
  kTruncateWrite,  ///< O_WRONLY | O_CREAT | O_TRUNC, mode 0644.
  kAppend,         ///< O_WRONLY | O_CREAT | O_APPEND, mode 0644.
};

/// The filesystem operations the durability layer needs. Directory-level
/// helpers (CreateDirectories, ListDirectory, RemoveFileIfExists, FileSize)
/// are part of the seam so fault injectors see every touch, but injectors
/// keep cleanup/introspection reliable — see FaultInjectingEnv.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env& Default();

  virtual Result<std::unique_ptr<File>> Open(const std::string& path,
                                             OpenMode mode) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  /// fsync(2) on the directory itself (makes a rename durable).
  virtual Status SyncDirectory(const std::string& path) = 0;
  virtual Status CreateDirectories(const std::string& path) = 0;
  /// The plain-file entries of `path` (names, not full paths), sorted.
  virtual Result<std::vector<std::string>> ListDirectory(
      const std::string& path) = 0;
  virtual Status RemoveFileIfExists(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
};

/// Maps an errno to the typed status the retry/degradation machinery keys
/// on: EINTR -> kUnavailable (transient, retry), ENOSPC/EDQUOT ->
/// kResourceExhausted (degrade, resumable), ENOENT -> kNotFound, anything
/// else -> kIoError. The message is "<what> <path>: <strerror>".
Status ErrnoStatus(const std::string& what, const std::string& path,
                   int error_number);

/// True for faults a bounded retry may clear (kUnavailable, i.e. EINTR).
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

/// Counters for the transient-fault retry loops; surfaced by Wal and
/// bench_serve so fault handling on the happy path is visibly zero.
struct RetryStats {
  uint64_t transient_retries = 0;  ///< EINTR-class retries that made no progress.
  uint64_t short_writes = 0;       ///< writes/reads that transferred short.
};

/// Consecutive no-progress attempts FullWrite/FullRead tolerate before
/// giving up with the last error (or kIoError for a wedged short-write).
/// Any forward progress resets the count, so a slowly-draining buffer
/// cannot starve the loop — only a genuinely stuck descriptor trips it.
inline constexpr int kMaxTransientRetries = 64;

/// Writes all of `data` or fails, retrying EINTR and continuing short
/// writes with the bounded deterministic policy above.
Status FullWrite(File& file, const void* data, size_t size,
                 RetryStats* stats = nullptr);

/// Appends the file's entire contents to `*out`, EINTR-safe.
Status FullRead(File& file, std::string* out, RetryStats* stats = nullptr);

/// Env-routed whole-file read: kNotFound when missing, typed errors
/// otherwise. The legacy io_util.h ReadFileToString forwards here with
/// Env::Default().
Result<std::string> ReadFileToString(Env& env, const std::string& path);

/// Env-routed atomic file write: write `<path>.tmp`, optionally fsync
/// (checked BEFORE the rename — an unsynced rename could publish a file
/// whose bytes never reached the platter), rename over the target, fsync
/// the directory. On ANY failure the tmp file is unlinked before
/// returning, so an error never leaks a `*.tmp` the snapshot pruner would
/// have to collect.
Status WriteFileAtomic(Env& env, const std::string& path,
                       const std::string& contents, bool sync,
                       RetryStats* stats = nullptr);

}  // namespace fm::io

#endif  // FM_COMMON_IO_ENV_H_
