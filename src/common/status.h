#ifndef FM_COMMON_STATUS_H_
#define FM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fm {

/// Machine-readable category of a failure. Mirrors the Arrow/RocksDB idiom of
/// returning structured error objects instead of throwing across API
/// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kNumericalError = 6,
  kIoError = 7,
  kUnimplemented = 8,
  kInternal = 9,
  /// The underlying storage is out of space (ENOSPC/EDQUOT). Resumable once
  /// space returns — see Service::TryResume().
  kResourceExhausted = 10,
  /// A transient fault (EINTR-class) that a bounded retry may clear.
  kUnavailable = 11,
  /// The service is in read-only degraded mode: mutating requests are
  /// rejected until TryResume() succeeds (or, if the WAL is poisoned, until
  /// a restart + Recover). See docs/FAULTS.md.
  kDegradedReadOnly = 12,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid-argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value returned by all fallible operations in
/// this library.
///
/// A default-constructed `Status` is OK and carries no allocation. Error
/// statuses carry a code and a human-readable message. `Status` is cheap to
/// copy and move and is intended to be returned by value.
///
/// Usage:
///
///   fm::Status s = DoWork();
///   if (!s.ok()) return s;
///
/// Class-level [[nodiscard]]: ignoring a returned Status silently drops an
/// error, so every discard is a compile error (-Werror). Deliberate
/// discards are written `(void)Expr();` with a `// discard-ok:` rationale —
/// tools/fm_lint.py (rule fm-discarded-status) enforces the comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code with a
  /// message is allowed but unusual.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DegradedReadOnly(std::string msg) {
    return Status(StatusCode::kDegradedReadOnly, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace fm

/// Propagates a non-OK status to the caller. Mirrors ARROW_RETURN_NOT_OK.
#define FM_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::fm::Status _fm_status = (expr);           \
    if (!_fm_status.ok()) return _fm_status;    \
  } while (false)

#endif  // FM_COMMON_STATUS_H_
