#include "common/env_util.h"

#include <cerrno>
#include <cstdlib>

namespace fm {

double GetEnvDouble(const char* name, double default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(env, &end);
  if (errno != 0 || end == env) return default_value;
  return value;
}

int64_t GetEnvInt64(const char* name, int64_t default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(env, &end, 10);
  if (errno != 0 || end == env) return default_value;
  return static_cast<int64_t>(value);
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr) return default_value;
  return std::string(env);
}

}  // namespace fm
