#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace fm::data {

RegressionDataset RegressionDataset::Select(
    const std::vector<size_t>& rows) const {
  RegressionDataset out;
  out.x = linalg::Matrix(rows.size(), x.cols());
  out.y = linalg::Vector(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    FM_CHECK(rows[r] < x.rows());
    for (size_t c = 0; c < x.cols(); ++c) out.x(r, c) = x(rows[r], c);
    out.y[r] = y[rows[r]];
  }
  return out;
}

RegressionDataset RegressionDataset::Sample(double rate, Rng& rng) const {
  const double clamped = std::clamp(rate, 0.0, 1.0);
  const size_t target =
      static_cast<size_t>(std::ceil(clamped * static_cast<double>(size())));
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  order.resize(target);
  return Select(order);
}

bool RegressionDataset::SatisfiesNormalizationContract(double tol) const {
  if (y.size() != x.rows()) return false;
  for (size_t i = 0; i < x.rows(); ++i) {
    double ssq = 0.0;
    for (size_t j = 0; j < x.cols(); ++j) ssq += x(i, j) * x(i, j);
    if (std::sqrt(ssq) > 1.0 + tol) return false;
    if (y[i] < -1.0 - tol || y[i] > 1.0 + tol) return false;
  }
  return true;
}

std::vector<Split> KFoldSplits(size_t n, size_t k, Rng& rng) {
  FM_CHECK(k >= 2 && k <= n);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  // Fold f owns the contiguous chunk [f*n/k, (f+1)*n/k) of the shuffled
  // order, so fold sizes differ by at most one.
  std::vector<Split> splits(k);
  for (size_t f = 0; f < k; ++f) {
    const size_t begin = f * n / k;
    const size_t end = (f + 1) * n / k;
    auto& split = splits[f];
    split.test.assign(order.begin() + begin, order.begin() + end);
    split.train.reserve(n - (end - begin));
    split.train.insert(split.train.end(), order.begin(), order.begin() + begin);
    split.train.insert(split.train.end(), order.begin() + end, order.end());
  }
  return splits;
}

}  // namespace fm::data
