#ifndef FM_DATA_DATASET_H_
#define FM_DATA_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fm::data {

/// The regression task's whole-dataset view after §3 preprocessing:
/// feature rows x_i with ‖x_i‖₂ ≤ 1, labels y_i in [−1, 1] (linear task) or
/// {0, 1} (logistic task).
///
/// Every algorithm in this library — FM, the baselines, the evaluation
/// harness — consumes this type, so the §3 contract is enforced in exactly
/// one place (the Normalizer, which produces it).
struct RegressionDataset {
  linalg::Matrix x;  ///< n × d feature matrix.
  linalg::Vector y;  ///< n labels.

  /// Number of tuples.
  size_t size() const { return x.rows(); }

  /// Feature dimensionality d.
  size_t dim() const { return x.cols(); }

  /// Returns the subset of tuples at the given row indices.
  RegressionDataset Select(const std::vector<size_t>& rows) const;

  /// Returns a uniform random subset containing ceil(rate * n) tuples
  /// (the paper's Table 2 "data subset sampling rate"). `rate` is clamped to
  /// [0, 1].
  RegressionDataset Sample(double rate, Rng& rng) const;

  /// Checks the §3 invariants: every ‖x_i‖ ≤ 1 + tol and every y within
  /// [−1−tol, 1+tol]. Used by tests and debug assertions.
  bool SatisfiesNormalizationContract(double tol = 1e-9) const;
};

/// One train/test split of row indices.
struct Split {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Produces the k folds of a shuffled k-fold cross-validation over n rows
/// (the paper's protocol with k = 5). Every row appears in exactly one test
/// fold; fold sizes differ by at most one. Requires 2 ≤ k ≤ n.
std::vector<Split> KFoldSplits(size_t n, size_t k, Rng& rng);

}  // namespace fm::data

#endif  // FM_DATA_DATASET_H_
