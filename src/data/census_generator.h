#ifndef FM_DATA_CENSUS_GENERATOR_H_
#define FM_DATA_CENSUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/table.h"

namespace fm::data {

/// Synthetic census microdata generator — the repository's stand-in for the
/// IPUMS "US" (370k tuples) and "Brazil" (190k tuples) extracts used in the
/// paper's §7 (the real extracts are license-gated and not redistributable).
///
/// The generated tables carry the paper's exact 14-attribute schema (after
/// its Marital Status → {IsSingle, IsMarried} split):
///   Age, Gender, IsSingle, IsMarried, Education, Disability, Nativity,
///   WorkHoursPerWeek, YearsResidence, OwnDwelling, FamilySize, NumChildren,
///   NumAutomobiles, AnnualIncome.
///
/// Each tuple is drawn from a latent-factor model: a socioeconomic factor
/// drives education, work hours, dwelling ownership and automobiles; age
/// drives marital status, children and residence tenure; AnnualIncome is a
/// noisy linear function of the demographic attributes with profile-specific
/// coefficients and noise. This plants exactly the structure the regressions
/// of §7 estimate, so the relative behaviour of FM vs. the baselines (who
/// wins, how accuracy scales with n, d and ε) is preserved even though
/// absolute error values differ from the paper's. See DESIGN.md §4.
class CensusGenerator {
 public:
  /// A named coefficient/noise profile. `US()` has a noisier income relation
  /// (harder logistic task), `Brazil()` a cleaner one, mirroring the relative
  /// difficulty visible in the paper's Figures 4–6.
  struct Profile {
    std::string name;
    size_t default_rows;
    double income_noise_sd;   ///< residual noise on the income score
    double education_mean;    ///< years
    double education_sd;
    double w_age;             ///< income score weights
    double w_education;
    double w_hours;
    double w_gender;
    double w_own_dwelling;
    double w_family_size;
  };

  /// The profile calibrated for the paper's US dataset (370k tuples).
  static Profile US();

  /// The profile calibrated for the paper's Brazil dataset (190k tuples).
  static Profile Brazil();

  /// The 14 column names in canonical order (income last).
  static const std::vector<std::string>& ColumnNames();

  /// Predictor subsets matching §7's dimensionality sweep. `total_attributes`
  /// counts the label like the paper does, so valid values are 5, 8, 11, 14;
  /// the returned list has total_attributes − 1 predictor names.
  static Result<std::vector<std::string>> AttributeSubset(
      int total_attributes);

  /// Name of the label column ("AnnualIncome").
  static const std::string& LabelColumn();

  /// Generates `rows` tuples under `profile`, deterministically from `seed`.
  static Result<Table> Generate(const Profile& profile, size_t rows,
                                uint64_t seed);

 private:
  CensusGenerator() = default;
};

}  // namespace fm::data

#endif  // FM_DATA_CENSUS_GENERATOR_H_
