#include "data/table.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace fm::data {

Result<Table> Table::Create(std::vector<std::string> column_names) {
  std::set<std::string> seen;
  for (const auto& name : column_names) {
    if (name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate column name: " + name);
    }
  }
  Table t;
  t.column_names_ = std::move(column_names);
  t.values_ = linalg::Matrix(0, t.column_names_.size());
  return t;
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

void Table::AppendRow(const std::vector<double>& row) {
  FM_CHECK(row.size() == column_names_.size());
  linalg::Matrix next(values_.rows() + 1, column_names_.size());
  std::copy(values_.data().begin(), values_.data().end(),
            next.data().begin());
  for (size_t c = 0; c < row.size(); ++c) next(values_.rows(), c) = row[c];
  values_ = std::move(next);
}

void Table::ResizeRows(size_t n) {
  linalg::Matrix next(n, column_names_.size());
  const size_t keep = std::min(n, values_.rows());
  std::copy(values_.data().begin(),
            values_.data().begin() + keep * column_names_.size(),
            next.data().begin());
  values_ = std::move(next);
}

Table Table::SelectRows(const std::vector<size_t>& rows) const {
  Table out;
  out.column_names_ = column_names_;
  out.values_ = linalg::Matrix(rows.size(), num_cols());
  for (size_t r = 0; r < rows.size(); ++r) {
    FM_CHECK(rows[r] < num_rows());
    for (size_t c = 0; c < num_cols(); ++c) {
      out.values_(r, c) = values_(rows[r], c);
    }
  }
  return out;
}

Result<Table> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    FM_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(name));
    indices.push_back(idx);
  }
  Table out;
  out.column_names_ = names;
  out.values_ = linalg::Matrix(num_rows(), names.size());
  for (size_t r = 0; r < num_rows(); ++r) {
    for (size_t c = 0; c < indices.size(); ++c) {
      out.values_(r, c) = values_(r, indices[c]);
    }
  }
  return out;
}

Result<double> Table::ColumnMin(size_t col) const {
  if (col >= num_cols()) return Status::OutOfRange("bad column index");
  if (num_rows() == 0) return Status::FailedPrecondition("empty table");
  double best = values_(0, col);
  for (size_t r = 1; r < num_rows(); ++r) best = std::min(best, values_(r, col));
  return best;
}

Result<double> Table::ColumnMax(size_t col) const {
  if (col >= num_cols()) return Status::OutOfRange("bad column index");
  if (num_rows() == 0) return Status::FailedPrecondition("empty table");
  double best = values_(0, col);
  for (size_t r = 1; r < num_rows(); ++r) best = std::max(best, values_(r, col));
  return best;
}

}  // namespace fm::data
