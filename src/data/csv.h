#ifndef FM_DATA_CSV_H_
#define FM_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/table.h"

namespace fm::data {

/// Writes `table` as an RFC-4180-style CSV (header row of column names,
/// numeric cells with full double precision). Overwrites an existing file.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a numeric CSV with a header row into a Table. Fails on missing
/// files, ragged rows, or non-numeric cells.
Result<Table> ReadCsv(const std::string& path);

}  // namespace fm::data

#endif  // FM_DATA_CSV_H_
