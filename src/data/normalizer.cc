#include "data/normalizer.h"

#include <algorithm>
#include <cmath>

namespace fm::data {

Result<Normalizer> Normalizer::Fit(
    const Table& table, const std::vector<std::string>& feature_columns,
    const std::string& label_column, const Options& options) {
  if (table.num_rows() == 0) {
    return Status::FailedPrecondition("cannot fit a normalizer on an empty table");
  }
  if (feature_columns.empty()) {
    return Status::InvalidArgument("at least one feature column is required");
  }
  Normalizer norm;
  norm.options_ = options;
  norm.feature_columns_ = feature_columns;
  norm.label_column_ = label_column;

  for (const auto& name : feature_columns) {
    FM_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
    FM_ASSIGN_OR_RETURN(double lo, table.ColumnMin(idx));
    FM_ASSIGN_OR_RETURN(double hi, table.ColumnMax(idx));
    norm.feature_ranges_.emplace_back(lo, hi);
  }

  FM_ASSIGN_OR_RETURN(size_t label_idx, table.ColumnIndex(label_column));
  FM_ASSIGN_OR_RETURN(double ylo, table.ColumnMin(label_idx));
  FM_ASSIGN_OR_RETURN(double yhi, table.ColumnMax(label_idx));
  norm.label_range_ = {ylo, yhi};

  if (options.task == TaskKind::kLogistic) {
    if (std::isnan(options.logistic_threshold)) {
      // Median of the label column.
      std::vector<double> labels(table.num_rows());
      for (size_t r = 0; r < table.num_rows(); ++r) {
        labels[r] = table.Get(r, label_idx);
      }
      std::nth_element(labels.begin(), labels.begin() + labels.size() / 2,
                       labels.end());
      norm.logistic_threshold_ = labels[labels.size() / 2];
    } else {
      norm.logistic_threshold_ = options.logistic_threshold;
    }
  }
  return norm;
}

Result<RegressionDataset> Normalizer::Apply(const Table& table) const {
  std::vector<size_t> feature_idx;
  feature_idx.reserve(feature_columns_.size());
  for (const auto& name : feature_columns_) {
    FM_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
    feature_idx.push_back(idx);
  }
  FM_ASSIGN_OR_RETURN(size_t label_idx, table.ColumnIndex(label_column_));

  const size_t n = table.num_rows();
  const size_t d = feature_columns_.size();
  // Footnote-2 intercept extension: budget the unit sphere across d+1
  // coordinates and spend the last one on a constant.
  const size_t d_eff = options_.add_intercept ? d + 1 : d;
  const double sqrt_d = std::sqrt(static_cast<double>(d_eff));

  RegressionDataset out;
  out.x = linalg::Matrix(n, d_eff);
  out.y = linalg::Vector(n);

  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < d; ++j) {
      const auto [lo, hi] = feature_ranges_[j];
      double v = 0.0;
      if (hi > lo) {
        v = (table.Get(r, feature_idx[j]) - lo) / ((hi - lo) * sqrt_d);
        // Clamp unseen out-of-range values to keep ‖x‖ ≤ 1.
        v = std::clamp(v, 0.0, 1.0 / sqrt_d);
      }
      out.x(r, j) = v;
    }
    if (options_.add_intercept) out.x(r, d) = 1.0 / sqrt_d;
    const double raw_y = table.Get(r, label_idx);
    if (options_.task == TaskKind::kLogistic) {
      out.y[r] = raw_y > logistic_threshold_ ? 1.0 : 0.0;
    } else {
      const auto [ylo, yhi] = label_range_;
      double v = 0.0;
      if (yhi > ylo) {
        v = 2.0 * (raw_y - ylo) / (yhi - ylo) - 1.0;
        v = std::clamp(v, -1.0, 1.0);
      }
      out.y[r] = v;
    }
  }
  return out;
}

double Normalizer::DenormalizeLabel(double normalized) const {
  const auto [ylo, yhi] = label_range_;
  return ylo + (normalized + 1.0) * 0.5 * (yhi - ylo);
}

}  // namespace fm::data
