#ifndef FM_DATA_NORMALIZER_H_
#define FM_DATA_NORMALIZER_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/table.h"

namespace fm::data {

/// Which regression task a dataset is being prepared for. Linear keeps the
/// label continuous in [−1, 1]; logistic thresholds it to {0, 1}.
enum class TaskKind { kLinear, kLogistic };

/// Implements the paper's §3 preprocessing contract.
///
/// Features: each attribute X_j is min–max mapped by
///   x_ij ← (x_ij − α_j) / ((β_j − α_j) · √d)
/// (footnote 1), which guarantees ‖x_i‖₂ ≤ 1 for every tuple.
///
/// Label (linear): min–max mapped onto [−1, 1] (Definition 1's domain).
/// Label (logistic): mapped to 1 when strictly above `threshold` (in raw
/// units), else 0 (§7: "values higher than a predefined threshold are mapped
/// to 1"). With no explicit threshold the fitted median is used.
///
/// Fit once on a table, then Apply to any schema-compatible table — the
/// evaluation harness fits on the full dataset (as the paper's protocol
/// implies; scaling bounds α, β are treated as public domain knowledge,
/// which is the standard assumption in the DP regression literature).
class Normalizer {
 public:
  /// Options controlling the label transformation.
  struct Options {
    TaskKind task = TaskKind::kLinear;
    /// Raw-unit threshold for the logistic label; NaN means "use the median
    /// of the fitted label column".
    double logistic_threshold = kUseMedian;
    /// Implements the paper's footnote-2 extension: appends a constant
    /// coordinate so the regression learns an intercept. The features are
    /// scaled by 1/√(d+1) instead of 1/√d and the extra coordinate is set to
    /// 1/√(d+1), so ‖x_i‖₂ ≤ 1 still holds and every sensitivity formula
    /// applies with dimensionality d+1.
    bool add_intercept = false;
    static constexpr double kUseMedian =
        std::numeric_limits<double>::quiet_NaN();
  };

  /// Learns per-column [α_j, β_j] ranges from `table`. `feature_columns`
  /// lists the predictor columns; `label_column` the regression target.
  /// Fails when the table is empty or a column is missing. Constant feature
  /// columns get the degenerate map x ← 0.
  static Result<Normalizer> Fit(const Table& table,
                                const std::vector<std::string>& feature_columns,
                                const std::string& label_column,
                                const Options& options);

  /// Transforms a table (same schema as the fitted one) into a normalized
  /// RegressionDataset. Values outside the fitted range are clamped so the
  /// §3 invariants hold on unseen data.
  Result<RegressionDataset> Apply(const Table& table) const;

  /// The raw-unit logistic threshold actually in effect (median-resolved).
  double logistic_threshold() const { return logistic_threshold_; }

  /// The fitted feature ranges, one [min,max] per feature column.
  const std::vector<std::pair<double, double>>& feature_ranges() const {
    return feature_ranges_;
  }

  /// Maps a normalized linear-task prediction back into raw label units.
  double DenormalizeLabel(double normalized) const;

 private:
  Normalizer() = default;

  Options options_;
  std::vector<std::string> feature_columns_;
  std::string label_column_;
  std::vector<std::pair<double, double>> feature_ranges_;
  std::pair<double, double> label_range_{0.0, 1.0};
  double logistic_threshold_ = 0.0;
};

}  // namespace fm::data

#endif  // FM_DATA_NORMALIZER_H_
