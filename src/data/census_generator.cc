#include "data/census_generator.h"

#include <algorithm>
#include <cmath>

namespace fm::data {

namespace {

// Canonical column positions; keep in sync with ColumnNames().
enum Column : size_t {
  kAge = 0,
  kGender,
  kIsSingle,
  kIsMarried,
  kEducation,
  kDisability,
  kNativity,
  kWorkHours,
  kYearsResidence,
  kOwnDwelling,
  kFamilySize,
  kNumChildren,
  kNumAutomobiles,
  kAnnualIncome,
  kNumColumns,
};

double Clamp(double v, double lo, double hi) { return std::clamp(v, lo, hi); }

}  // namespace

CensusGenerator::Profile CensusGenerator::US() {
  Profile p;
  p.name = "US";
  p.default_rows = 370000;
  p.income_noise_sd = 0.30;  // noisier income relation -> harder tasks
  p.education_mean = 13.0;
  p.education_sd = 3.0;
  p.w_age = 0.35;
  p.w_education = 0.85;
  p.w_hours = 0.65;
  p.w_gender = -0.18;
  p.w_own_dwelling = 0.22;
  p.w_family_size = -0.10;
  return p;
}

CensusGenerator::Profile CensusGenerator::Brazil() {
  Profile p;
  p.name = "Brazil";
  p.default_rows = 190000;
  p.income_noise_sd = 0.18;  // cleaner income relation -> easier logistic
  p.education_mean = 9.0;
  p.education_sd = 4.0;
  p.w_age = 0.30;
  p.w_education = 1.10;
  p.w_hours = 0.55;
  p.w_gender = -0.25;
  p.w_own_dwelling = 0.30;
  p.w_family_size = -0.18;
  return p;
}

const std::vector<std::string>& CensusGenerator::ColumnNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{
          "Age",           "Gender",       "IsSingle",
          "IsMarried",     "Education",    "Disability",
          "Nativity",      "WorkHoursPerWeek", "YearsResidence",
          "OwnDwelling",   "FamilySize",   "NumChildren",
          "NumAutomobiles", "AnnualIncome"};
  return *kNames;
}

const std::string& CensusGenerator::LabelColumn() {
  static const std::string* const kLabel = new std::string("AnnualIncome");
  return *kLabel;
}

Result<std::vector<std::string>> CensusGenerator::AttributeSubset(
    int total_attributes) {
  // §7: first subset {Age, Gender, Education, FamilySize, Income};
  // second adds {Nativity, OwnDwelling, NumAutomobiles};
  // third adds {IsSingle, IsMarried, NumChildren}; fourth is all attributes.
  switch (total_attributes) {
    case 5:
      return std::vector<std::string>{"Age", "Gender", "Education",
                                      "FamilySize"};
    case 8:
      return std::vector<std::string>{"Age",       "Gender",
                                      "Education", "FamilySize",
                                      "Nativity",  "OwnDwelling",
                                      "NumAutomobiles"};
    case 11:
      return std::vector<std::string>{
          "Age",         "Gender",      "Education",      "FamilySize",
          "Nativity",    "OwnDwelling", "NumAutomobiles", "IsSingle",
          "IsMarried",   "NumChildren"};
    case 14: {
      std::vector<std::string> all = ColumnNames();
      all.pop_back();  // drop the label
      return all;
    }
    default:
      return Status::InvalidArgument(
          "total_attributes must be one of {5, 8, 11, 14}, got " +
          std::to_string(total_attributes));
  }
}

Result<Table> CensusGenerator::Generate(const Profile& profile, size_t rows,
                                        uint64_t seed) {
  if (rows == 0) return Status::InvalidArgument("rows must be positive");
  FM_ASSIGN_OR_RETURN(Table table, Table::Create(ColumnNames()));
  table.ResizeRows(rows);
  Rng rng(seed);

  for (size_t i = 0; i < rows; ++i) {
    // Latent socioeconomic factor shared by education/hours/assets/income.
    const double ses = rng.Gaussian();

    const double age = Clamp(rng.Gaussian(42.0, 15.0), 18.0, 95.0);
    const double age01 = (age - 18.0) / 77.0;

    const double gender = rng.Bernoulli(0.5) ? 1.0 : 0.0;

    const double education = Clamp(
        rng.Gaussian(profile.education_mean + 2.0 * ses, profile.education_sd),
        0.0, 18.0);
    const double edu01 = education / 18.0;

    const double disability =
        rng.Bernoulli(0.04 + 0.12 * age01) ? 1.0 : 0.0;
    const double nativity = rng.Bernoulli(0.82) ? 1.0 : 0.0;

    // Marital status from age: young → single, middle-aged → married.
    const double p_single = Clamp(0.95 - 1.6 * age01, 0.05, 0.95);
    const double p_married = Clamp(0.15 + 1.1 * age01 - 0.45 * age01 * age01,
                                   0.03, 0.80);
    double is_single = 0.0, is_married = 0.0;
    const double u = rng.Uniform();
    if (u < p_single) {
      is_single = 1.0;
    } else if (u < p_single + p_married) {
      is_married = 1.0;
    }  // else divorced/widowed: both flags zero, like the paper's encoding.

    double hours = rng.Gaussian(40.0 + 4.0 * ses, 9.0);
    if (disability > 0.5) hours *= 0.45;
    if (age > 67.0) hours *= 0.35;
    hours = Clamp(hours, 0.0, 80.0);
    const double hours01 = hours / 80.0;

    const double years_residence =
        Clamp(rng.Gaussian(6.0 + 22.0 * age01, 6.0), 0.0, 50.0);

    const double own_dwelling =
        rng.Bernoulli(Clamp(0.18 + 0.35 * age01 + 0.16 * ses, 0.02, 0.97))
            ? 1.0
            : 0.0;

    const double family_size = Clamp(
        std::round(1.0 + is_married * 1.4 + rng.Gamma(1.6, 1.0)), 1.0, 12.0);
    const double num_children = Clamp(
        std::round(is_married * 1.2 + 0.5 * (family_size - 2.0) +
                   rng.Gaussian(0.0, 0.7)),
        0.0, 8.0);
    const double num_autos = Clamp(
        std::round(0.6 + 0.9 * own_dwelling + 0.5 * ses + rng.Gaussian(0.0, 0.6)),
        0.0, 5.0);

    // Income score: planted linear signal + profile noise, mapped through a
    // mild convexity to a dollar-like range with a long right tail.
    const double score = profile.w_age * age01 +
                         profile.w_education * edu01 +
                         profile.w_hours * hours01 +
                         profile.w_gender * gender +
                         profile.w_own_dwelling * own_dwelling +
                         profile.w_family_size * (family_size / 12.0) +
                         0.08 * nativity - 0.15 * disability +
                         rng.Gaussian(0.0, profile.income_noise_sd);
    const double income =
        Clamp(12000.0 + 52000.0 * score + 9000.0 * score * std::fabs(score),
              0.0, 350000.0);

    table.Set(i, kAge, age);
    table.Set(i, kGender, gender);
    table.Set(i, kIsSingle, is_single);
    table.Set(i, kIsMarried, is_married);
    table.Set(i, kEducation, education);
    table.Set(i, kDisability, disability);
    table.Set(i, kNativity, nativity);
    table.Set(i, kWorkHours, hours);
    table.Set(i, kYearsResidence, years_residence);
    table.Set(i, kOwnDwelling, own_dwelling);
    table.Set(i, kFamilySize, family_size);
    table.Set(i, kNumChildren, num_children);
    table.Set(i, kNumAutomobiles, num_autos);
    table.Set(i, kAnnualIncome, income);
  }
  return table;
}

}  // namespace fm::data
