#ifndef FM_DATA_TABLE_H_
#define FM_DATA_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace fm::data {

/// A named, untyped-numeric table of microdata — the raw form produced by the
/// census generator or a CSV load, before the §3 normalization turns it into
/// a `RegressionDataset`.
///
/// All attributes are stored as doubles; binary and categorical attributes
/// use integer-valued doubles. Column names are unique.
class Table {
 public:
  Table() = default;

  /// Creates a table with the given column names and zero rows.
  static Result<Table> Create(std::vector<std::string> column_names);

  size_t num_rows() const { return values_.rows(); }
  size_t num_cols() const { return values_.cols(); }

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  /// Index of a named column, or kNotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Cell accessors (unchecked).
  double Get(size_t row, size_t col) const { return values_(row, col); }
  void Set(size_t row, size_t col, double v) { values_(row, col) = v; }

  /// The backing matrix (rows = tuples).
  const linalg::Matrix& values() const { return values_; }

  /// Appends a row; aborts if the arity mismatches.
  void AppendRow(const std::vector<double>& row);

  /// Pre-allocates storage for `n` rows (all zero); faster than repeated
  /// AppendRow for generators that then use Set.
  void ResizeRows(size_t n);

  /// Returns a new table with only the rows whose indices are listed.
  Table SelectRows(const std::vector<size_t>& rows) const;

  /// Returns a new table with only the named columns (in the given order).
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// Column min / max over all rows. Fails on an empty table or bad index.
  Result<double> ColumnMin(size_t col) const;
  Result<double> ColumnMax(size_t col) const;

 private:
  std::vector<std::string> column_names_;
  linalg::Matrix values_;
};

}  // namespace fm::data

#endif  // FM_DATA_TABLE_H_
