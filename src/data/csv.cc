#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace fm::data {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  // A trailing comma means a trailing empty field.
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const auto& names = table.column_names();
  for (size_t c = 0; c < names.size(); ++c) {
    if (c) out << ',';
    out << names[c];
  }
  out << '\n';
  out.precision(17);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c) out << ',';
      out << table.Get(r, c);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty CSV: " + path);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  FM_ASSIGN_OR_RETURN(Table table, Table::Create(SplitLine(line)));

  // Accumulate flat row-major cells, then bulk-load (AppendRow per line
  // would reallocate the backing matrix quadratically on large files).
  std::vector<double> cells;
  size_t num_rows = 0;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto fields = SplitLine(line);
    if (fields.size() != table.num_cols()) {
      return Status::IoError("ragged row at line " +
                             std::to_string(line_number) + " in " + path);
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(fields[c].c_str(), &end);
      if (errno != 0 || end == fields[c].c_str()) {
        return Status::IoError("non-numeric cell at line " +
                               std::to_string(line_number) + ", column " +
                               std::to_string(c) + " in " + path);
      }
      cells.push_back(v);
    }
    ++num_rows;
  }
  table.ResizeRows(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      table.Set(r, c, cells[r * table.num_cols() + c]);
    }
  }
  return table;
}

}  // namespace fm::data
