#include "linalg/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/env_util.h"

// The Ref* implementations are the deterministic anchor and the perf
// baseline that BENCH_linalg.json speedups are measured against; keep them
// honestly scalar so the comparison means "blocked/SIMD vs naive loop", not
// "whatever the vectorizer did vs whatever the vectorizer did".
#if defined(__GNUC__) && !defined(__clang__)
#define FM_SCALAR_REF __attribute__((optimize("no-tree-vectorize")))
#else
#define FM_SCALAR_REF
#endif

namespace fm::linalg::kernels {

namespace {

std::atomic<int> g_blocked{-1};  // -1 = not yet read from the environment

// Neumaier compensated add, branch form — shared by scalar reference paths.
inline void CompensatedAddScalar(double& sum, double& comp, double v) {
  const double t = sum + v;
  if (std::fabs(sum) >= std::fabs(v)) {
    comp += (sum - t) + v;
  } else {
    comp += (v - t) + sum;
  }
  sum = t;
}

// GEMM register-tile panel: C(rows×m) += A(rows×kb) · B(kb×m) for one
// k-panel, `R` rows at a time. Per element the in-panel products are summed
// sequentially in k into `acc` and added to C once — the summation spec
// both GEMM implementations follow.
template <size_t R>
void GemmMicroPanel(const double* __restrict a, size_t lda,
                    const double* __restrict b, size_t ldb,
                    double* __restrict c, size_t ldc, size_t kb, size_t m) {
  size_t j0 = 0;
  for (; j0 + kGemmNr <= m; j0 += kGemmNr) {
    double acc[R][kGemmNr] = {};
    for (size_t kk = 0; kk < kb; ++kk) {
      const double* __restrict bk = b + kk * ldb + j0;
      for (size_t r = 0; r < R; ++r) {
        const double ar = a[r * lda + kk];
        for (size_t v = 0; v < kGemmNr; ++v) acc[r][v] += ar * bk[v];
      }
    }
    for (size_t r = 0; r < R; ++r) {
      double* __restrict crow = c + r * ldc + j0;
      for (size_t v = 0; v < kGemmNr; ++v) crow[v] += acc[r][v];
    }
  }
  for (; j0 < m; ++j0) {  // ragged column tail, same per-panel grouping
    double acc[R] = {};
    for (size_t kk = 0; kk < kb; ++kk) {
      const double bkj = b[kk * ldb + j0];
      for (size_t r = 0; r < R; ++r) acc[r] += a[r * lda + kk] * bkj;
    }
    for (size_t r = 0; r < R; ++r) c[r * ldc + j0] += acc[r];
  }
}

}  // namespace

bool BlockedEnabled() {
  int v = g_blocked.load(std::memory_order_relaxed);
  if (v < 0) {
    v = GetEnvInt64("FM_BLOCKED_LINALG", 1) != 0 ? 1 : 0;
    g_blocked.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetBlockedEnabled(bool enabled) {
  g_blocked.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

void GemmAccumulate(const double* a, size_t lda, const double* b, size_t ldb,
                    double* c, size_t ldc, size_t n, size_t k, size_t m) {
  for (size_t k0 = 0; k0 < k; k0 += kGemmKc) {
    const size_t kb = std::min(kGemmKc, k - k0);
    const double* ap = a + k0;
    const double* bp = b + k0 * ldb;
    size_t i0 = 0;
    for (; i0 + kGemmMr <= n; i0 += kGemmMr) {
      GemmMicroPanel<kGemmMr>(ap + i0 * lda, lda, bp, ldb, c + i0 * ldc, ldc,
                              kb, m);
    }
    for (; i0 < n; ++i0) {
      GemmMicroPanel<1>(ap + i0 * lda, lda, bp, ldb, c + i0 * ldc, ldc, kb,
                        m);
    }
  }
}

FM_SCALAR_REF
void RefGemmAccumulate(const double* a, size_t lda, const double* b,
                       size_t ldb, double* c, size_t ldc, size_t n, size_t k,
                       size_t m) {
  for (size_t k0 = 0; k0 < k; k0 += kGemmKc) {
    const size_t kb = std::min(kGemmKc, k - k0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < m; ++j) {
        double acc = 0.0;
        for (size_t kk = 0; kk < kb; ++kk) {
          acc += a[i * lda + k0 + kk] * b[(k0 + kk) * ldb + j];
        }
        c[i * ldc + j] += acc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SYRK upper: C(j,l) += Σ_r X(r,j)·X(r,l), l ≥ j.
// ---------------------------------------------------------------------------

void SyrkUpperAccumulate(const double* x, size_t ldx, size_t rows, size_t d,
                         double* c, size_t ldc) {
  constexpr size_t kTj = 4;
  constexpr size_t kTl = 8;
  for (size_t r0 = 0; r0 < rows; r0 += kSyrkRowPanel) {
    const size_t rb = std::min(kSyrkRowPanel, rows - r0);
    for (size_t j0 = 0; j0 < d; j0 += kTj) {
      const size_t jb = std::min(kTj, d - j0);
      for (size_t l0 = j0; l0 < d; l0 += kTl) {
        const size_t lb = std::min(kTl, d - l0);
        // Accumulate the full kTj×kTl tile over the row panel (outer
        // products, one row at a time — per element that is the in-panel
        // row-order sum), then write back only the upper-triangle part.
        double acc[kTj][kTl] = {};
        for (size_t r = r0; r < r0 + rb; ++r) {
          const double* __restrict xr = x + r * ldx;
          for (size_t tj = 0; tj < jb; ++tj) {
            const double xj = xr[j0 + tj];
            for (size_t tl = 0; tl < lb; ++tl) {
              acc[tj][tl] += xj * xr[l0 + tl];
            }
          }
        }
        for (size_t tj = 0; tj < jb; ++tj) {
          const size_t j = j0 + tj;
          for (size_t tl = 0; tl < lb; ++tl) {
            const size_t l = l0 + tl;
            if (l >= j) c[j * ldc + l] += acc[tj][tl];
          }
        }
      }
    }
  }
}

FM_SCALAR_REF
void RefSyrkUpperAccumulate(const double* x, size_t ldx, size_t rows,
                            size_t d, double* c, size_t ldc) {
  for (size_t r0 = 0; r0 < rows; r0 += kSyrkRowPanel) {
    const size_t rb = std::min(kSyrkRowPanel, rows - r0);
    for (size_t j = 0; j < d; ++j) {
      for (size_t l = j; l < d; ++l) {
        double acc = 0.0;
        for (size_t r = r0; r < r0 + rb; ++r) {
          acc += x[r * ldx + j] * x[r * ldx + l];
        }
        c[j * ldc + l] += acc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SYRK lower subtract (single panel) — the blocked Cholesky trailing update.
// ---------------------------------------------------------------------------

void SyrkLowerSubtract(const double* p, size_t ldp, size_t n, size_t width,
                       double* c, size_t ldc) {
  if (n == 0 || width == 0) return;
  constexpr size_t kTi = 4;
  constexpr size_t kTj = 8;
  // Transpose the panel (exact copies) so the inner loop reads contiguous
  // spans over j: pt(k, i) = p(i, k), pt is width×n.
  std::vector<double> pt(width * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < width; ++k) pt[k * n + i] = p[i * ldp + k];
  }
  for (size_t i0 = 0; i0 < n; i0 += kTi) {
    const size_t ib = std::min(kTi, n - i0);
    for (size_t j0 = 0; j0 <= i0 + ib - 1; j0 += kTj) {
      const size_t jb = std::min(kTj, n - j0);
      double acc[kTi][kTj] = {};
      for (size_t k = 0; k < width; ++k) {
        const double* __restrict ptk = pt.data() + k * n;
        for (size_t ti = 0; ti < ib; ++ti) {
          const double pik = ptk[i0 + ti];
          for (size_t tj = 0; tj < jb; ++tj) {
            acc[ti][tj] += pik * ptk[j0 + tj];
          }
        }
      }
      for (size_t ti = 0; ti < ib; ++ti) {
        const size_t i = i0 + ti;
        for (size_t tj = 0; tj < jb; ++tj) {
          const size_t j = j0 + tj;
          if (j <= i) c[i * ldc + j] -= acc[ti][tj];
        }
      }
    }
  }
}

FM_SCALAR_REF
void RefSyrkLowerSubtract(const double* p, size_t ldp, size_t n, size_t width,
                          double* c, size_t ldc) {
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < width; ++k) {
        acc += p[i * ldp + k] * p[j * ldp + k];
      }
      c[i * ldc + j] -= acc;
    }
  }
}

// ---------------------------------------------------------------------------
// BLAS-1
// ---------------------------------------------------------------------------

double Dot(const double* __restrict a, const double* __restrict b, size_t n) {
  // Strictly sequential: splitting into SIMD partial sums would reassociate
  // and break bit-identity with the scalar loops this replaces.
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(double* __restrict y, double alpha, const double* __restrict x,
          size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

// ---------------------------------------------------------------------------
// Matvec
// ---------------------------------------------------------------------------

void MatVec(const double* a, size_t lda, size_t rows, size_t cols,
            const double* __restrict x, double* __restrict y) {
  size_t i = 0;
  if (cols < 32) {
    // Too few columns for the 4-row ILP scheme to amortize its setup; the
    // per-row sequential dot is the same bits either way.
    for (; i < rows; ++i) {
      const double* __restrict row = a + i * lda;
      double sum = 0.0;
      for (size_t j = 0; j < cols; ++j) sum += row[j] * x[j];
      y[i] = sum;
    }
    return;
  }
  for (; i + kMatVecMr <= rows; i += kMatVecMr) {
    const double* __restrict r0 = a + i * lda;
    const double* __restrict r1 = r0 + lda;
    const double* __restrict r2 = r1 + lda;
    const double* __restrict r3 = r2 + lda;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      const double xj = x[j];
      s0 += r0[j] * xj;
      s1 += r1[j] * xj;
      s2 += r2[j] * xj;
      s3 += r3[j] * xj;
    }
    y[i] = s0;
    y[i + 1] = s1;
    y[i + 2] = s2;
    y[i + 3] = s3;
  }
  for (; i < rows; ++i) {
    const double* __restrict row = a + i * lda;
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
}

FM_SCALAR_REF
void RefMatVec(const double* a, size_t lda, size_t rows, size_t cols,
               const double* __restrict x, double* __restrict y) {
  for (size_t i = 0; i < rows; ++i) {
    const double* row = a + i * lda;
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
}

// ---------------------------------------------------------------------------
// Compensated per-tuple objective contribution
// ---------------------------------------------------------------------------

void CompensatedTupleUpdate(double* __restrict sum, double* __restrict comp,
                            const double* __restrict x, size_t d,
                            double m_scale, double alpha_bias, double beta) {
  // Two long contiguous passes instead of d short triangle rows: first
  // materialize the tuple's coefficient contributions into a flat scratch
  // panel, then apply one branchless Neumaier sweep over the whole span.
  // Compensated adds to distinct coefficients are independent, and both
  // arms of the select evaluate the same expressions as the reference's
  // if/else, so the result is bit-identical to RefCompensatedTupleUpdate —
  // the restructuring only exists so the compiler can vectorize.
  const size_t ncoef = d * (d + 1) / 2 + d + 1;
  static thread_local std::vector<double> scratch;
  if (scratch.size() < ncoef) scratch.resize(ncoef);
  double* __restrict v = scratch.data();
  size_t idx = 0;
  for (size_t i = 0; i < d; ++i) {
    const double xi = m_scale * x[i];
    const double* __restrict xs = x + i;
    double* __restrict out = v + idx;
    const size_t len = d - i;
    for (size_t j = 0; j < len; ++j) out[j] = xi * xs[j];
    idx += len;
  }
  for (size_t j = 0; j < d; ++j) v[idx + j] = alpha_bias * x[j];
  v[idx + d] = beta;

  for (size_t t = 0; t < ncoef; ++t) {
    // Knuth's branch-free TwoSum. Like the reference's Neumaier branch it
    // produces the EXACT rounding error of st + vt (a representable
    // double), so comp receives bit-identical increments — it just needs
    // no magnitude comparison, which lets the loop vectorize.
    const double vt = v[t];
    const double st = sum[t];
    const double total = st + vt;
    const double z = total - st;
    comp[t] += (st - (total - z)) + (vt - z);
    sum[t] = total;
  }
}

namespace {

// One coefficient span: (sum, comp)[j] ⊕= w_r · x_r[j] for the kB tuples,
// chained in tuple order. Compensation stays PER TUPLE (batching a plain
// partial first would forfeit the fold cache's ≤1-ulp guarantee on
// near-cancelling α coefficients) via branch-free TwoSum; the r loop has a
// constant trip count, so it unrolls and the j loop vectorizes. Fusing the
// product into the chain keeps everything in registers — no scratch panel.
inline void CompensatedSpanUpdate(double* __restrict sum,
                                  double* __restrict comp,
                                  const double* const* __restrict xrows,
                                  const double* __restrict w, size_t len) {
  for (size_t j = 0; j < len; ++j) {
    double st = sum[j];
    double ct = comp[j];
    for (size_t r = 0; r < kCompensatedBatch; ++r) {
      const double vt = w[r] * xrows[r][j];
      const double total = st + vt;
      const double z = total - st;
      ct += (st - (total - z)) + (vt - z);
      st = total;
    }
    sum[j] = st;
    comp[j] = ct;
  }
}

}  // namespace

void CompensatedTupleUpdateBatch(double* __restrict sum,
                                 double* __restrict comp,
                                 const double* const* xs, size_t d,
                                 double m_scale, const double* alpha_bias,
                                 const double* beta) {
  constexpr size_t kB = kCompensatedBatch;
  size_t idx = 0;
  for (size_t i = 0; i < d; ++i) {
    double xi[kB];
    const double* xrows[kB];
    for (size_t r = 0; r < kB; ++r) {
      xi[r] = m_scale * xs[r][i];
      xrows[r] = xs[r] + i;
    }
    const size_t len = d - i;
    CompensatedSpanUpdate(sum + idx, comp + idx, xrows, xi, len);
    idx += len;
  }
  CompensatedSpanUpdate(sum + idx, comp + idx, xs, alpha_bias, d);
  idx += d;
  double st = sum[idx];
  double ct = comp[idx];
  for (size_t r = 0; r < kB; ++r) {
    const double total = st + beta[r];
    const double z = total - st;
    ct += (st - (total - z)) + (beta[r] - z);
    st = total;
  }
  sum[idx] = st;
  comp[idx] = ct;
}

FM_SCALAR_REF
void RefCompensatedTupleUpdateBatch(double* __restrict sum,
                                    double* __restrict comp,
                                    const double* const* xs, size_t d,
                                    double m_scale, const double* alpha_bias,
                                    const double* beta) {
  for (size_t r = 0; r < kCompensatedBatch; ++r) {
    RefCompensatedTupleUpdate(sum, comp, xs[r], d, m_scale, alpha_bias[r],
                              beta[r]);
  }
}

FM_SCALAR_REF
void RefCompensatedTupleUpdate(double* __restrict sum,
                               double* __restrict comp,
                               const double* __restrict x, size_t d,
                               double m_scale, double alpha_bias,
                               double beta) {
  size_t idx = 0;
  for (size_t i = 0; i < d; ++i) {
    const double xi = m_scale * x[i];
    for (size_t j = i; j < d; ++j, ++idx) {
      CompensatedAddScalar(sum[idx], comp[idx], xi * x[j]);
    }
  }
  for (size_t j = 0; j < d; ++j, ++idx) {
    CompensatedAddScalar(sum[idx], comp[idx], alpha_bias * x[j]);
  }
  CompensatedAddScalar(sum[idx], comp[idx], beta);
}

}  // namespace fm::linalg::kernels
