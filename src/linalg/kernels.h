#ifndef FM_LINALG_KERNELS_H_
#define FM_LINALG_KERNELS_H_

#include <cstddef>

namespace fm::linalg::kernels {

/// Cache-blocked, SIMD-friendly micro-kernels behind every linalg hot path
/// (GEMM, rank-k symmetric updates, matvec, compensated accumulation), plus
/// scalar reference implementations of each.
///
/// ## Determinism contract (bit-identity)
///
/// Every blocked kernel produces **bit-identical** results to its `Ref*`
/// scalar counterpart, for all shapes. This is what makes the
/// `FM_BLOCKED_LINALG` escape hatch a pure performance knob: accuracy
/// output (figs 4–6, CV statistics) is byte-identical either way, and
/// `tests/kernels_test.cc` asserts exact equality across ragged sizes.
///
/// The identity is achieved by fixing a *summation specification* that both
/// implementations follow, rather than by restricting the blocked code to
/// the naive loop order:
///
/// - **GEMM** (`C += A·B`): for each element C(i,j), the k-dimension is cut
///   into panels of `kGemmKc`; within a panel the products a(i,k)·b(k,j)
///   are summed sequentially in k order into a fresh accumulator, and panel
///   totals are added to C(i,j) in panel order. The blocked kernel holds
///   the accumulator in a register tile; the reference holds it in a local
///   double — same additions, same order, same bits.
/// - **SYRK** (`C(upper) += XᵀX`): the rows of X are cut into panels of
///   `kSyrkRowPanel`; per element, in-panel products are summed in row
///   order and panel totals added in panel order.
/// - **Matvec / dot**: reductions are strictly sequential in element order
///   (never split into SIMD partial sums, which would reassociate). The
///   blocked kernels gain throughput from instruction-level parallelism
///   *across* independent rows, not from splitting any single reduction.
/// - **Compensated accumulation** (ObjectiveAccumulator): the blocked
///   kernel replaces Neumaier's branch with Knuth's branch-free TwoSum.
///   Both compute the *exact* rounding error of `sum + v` (a representable
///   double), so the increment fed to the compensation term is
///   bit-identical — TwoSum just has no magnitude comparison, which lets
///   the sweep vectorize.
///
/// The build compiles with `-ffp-contract=off` (see CMakeLists.txt), so the
/// compiler cannot fuse a multiply into an add in one kernel but not the
/// other; without that flag GCC's default (`-ffp-contract=fast`) may
/// contract across statements and break the bit-identity.
///
/// All pointers are to dense row-major storage; `ld*` arguments are leading
/// dimensions (row strides) in elements. Aliasing between inputs and
/// outputs is not allowed (hence `__restrict`).

/// Block-size constants (see docs/PERFORMANCE.md for the rationale).
inline constexpr size_t kGemmKc = 256;      ///< GEMM k-panel depth
inline constexpr size_t kGemmMr = 4;        ///< GEMM register-tile rows
inline constexpr size_t kGemmNr = 8;        ///< GEMM register-tile columns
inline constexpr size_t kSyrkRowPanel = 64; ///< SYRK rows per packed panel
inline constexpr size_t kCholeskyNb = 32;   ///< blocked Cholesky panel width
inline constexpr size_t kMatVecMr = 4;      ///< matvec rows in flight (ILP)

/// True when the blocked kernels are in use (the default). Controlled by
/// the `FM_BLOCKED_LINALG` environment variable, read once on first use:
/// `FM_BLOCKED_LINALG=0` selects the scalar reference implementations
/// everywhere, for differential testing and as the perf baseline.
bool BlockedEnabled();

/// Overrides the `FM_BLOCKED_LINALG` setting at runtime (tests and the
/// bench harness toggle both paths within one process).
void SetBlockedEnabled(bool enabled);

// ---------------------------------------------------------------------------
// GEMM: C(n×m) += A(n×k) · B(k×m).
// ---------------------------------------------------------------------------
void GemmAccumulate(const double* a, size_t lda, const double* b, size_t ldb,
                    double* c, size_t ldc, size_t n, size_t k, size_t m);
void RefGemmAccumulate(const double* a, size_t lda, const double* b,
                       size_t ldb, double* c, size_t ldc, size_t n, size_t k,
                       size_t m);

// ---------------------------------------------------------------------------
// SYRK (upper): C(j,l) += Σ_r X(r,j)·X(r,l) for l ≥ j; C is d×d, X rows×d.
// ---------------------------------------------------------------------------
void SyrkUpperAccumulate(const double* x, size_t ldx, size_t rows, size_t d,
                         double* c, size_t ldc);
void RefSyrkUpperAccumulate(const double* x, size_t ldx, size_t rows,
                            size_t d, double* c, size_t ldc);

// ---------------------------------------------------------------------------
// SYRK-subtract (lower), single k-panel: C(i,j) -= Σ_k P(i,k)·P(j,k) for
// j ≤ i, with the in-panel sum sequential in k and subtracted as one grouped
// total. This is the trailing update of the blocked right-looking Cholesky
// (P is the just-factored panel, width ≤ kCholeskyNb).
// ---------------------------------------------------------------------------
void SyrkLowerSubtract(const double* p, size_t ldp, size_t n, size_t width,
                       double* c, size_t ldc);
void RefSyrkLowerSubtract(const double* p, size_t ldp, size_t n, size_t width,
                          double* c, size_t ldc);

// ---------------------------------------------------------------------------
// BLAS-1 style fused kernels. Dot is a strictly sequential reduction (same
// bits in both modes — it is its own reference); Axpy vectorizes legally
// because distinct elements are independent.
// ---------------------------------------------------------------------------
double Dot(const double* __restrict a, const double* __restrict b, size_t n);
void Axpy(double* __restrict y, double alpha, const double* __restrict x,
          size_t n);

// ---------------------------------------------------------------------------
// Matvec: y(i) = Σ_j A(i,j)·x(j), each row a sequential reduction; the
// blocked kernel keeps kMatVecMr independent row accumulators in flight.
// ---------------------------------------------------------------------------
void MatVec(const double* a, size_t lda, size_t rows, size_t cols,
            const double* __restrict x, double* __restrict y);
void RefMatVec(const double* a, size_t lda, size_t rows, size_t cols,
               const double* __restrict x, double* __restrict y);

// ---------------------------------------------------------------------------
// Compensated (Neumaier) per-tuple objective contribution — the
// ObjectiveAccumulator hot loop. Updates the flat coefficient layout
// [M upper triangle (d(d+1)/2), α (d), β (1)]:
//
//   triangle  : (sum,comp)[idx] ⊕= (m_scale·x[i])·x[j]   (j ≥ i, row-major)
//   α         : (sum,comp)[idx] ⊕= alpha_bias·x[j]
//   β         : (sum,comp)[idx] ⊕= beta
//
// where ⊕= is a Neumaier compensated add. Per-tuple compensation is what
// upholds the ≤1-ulp fold-derivation guarantee documented in
// core/objective_accumulator.h, so the kernel keeps it; the blocked version
// wins by evaluating the compensation branchlessly over the contiguous
// coefficient span (SIMD-able), not by batching rows into plain sums.
// ---------------------------------------------------------------------------
void CompensatedTupleUpdate(double* __restrict sum, double* __restrict comp,
                            const double* __restrict x, size_t d,
                            double m_scale, double alpha_bias, double beta);
void RefCompensatedTupleUpdate(double* __restrict sum,
                               double* __restrict comp,
                               const double* __restrict x, size_t d,
                               double m_scale, double alpha_bias, double beta);

/// Number of tuples the batch kernels consume per call.
inline constexpr size_t kCompensatedBatch = 4;

/// Applies kCompensatedBatch consecutive tuple contributions in one sweep:
/// per coefficient, the four compensated adds are chained in tuple order in
/// registers, so the (sum, comp) stream is loaded and stored once instead
/// of four times. Compensation stays PER TUPLE — batching plain partials
/// first would forfeit the fold cache's ≤1-ulp guarantee on
/// near-cancelling α coefficients — so the per-coefficient operation
/// sequence is exactly four single-tuple updates, bit-identical to four
/// CompensatedTupleUpdate calls in the same order (the reference batch is
/// literally that loop).
void CompensatedTupleUpdateBatch(double* __restrict sum,
                                 double* __restrict comp,
                                 const double* const* xs, size_t d,
                                 double m_scale, const double* alpha_bias,
                                 const double* beta);
void RefCompensatedTupleUpdateBatch(double* __restrict sum,
                                    double* __restrict comp,
                                    const double* const* xs, size_t d,
                                    double m_scale, const double* alpha_bias,
                                    const double* beta);

}  // namespace fm::linalg::kernels

#endif  // FM_LINALG_KERNELS_H_
