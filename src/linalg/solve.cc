#include "linalg/solve.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/lu.h"

namespace fm::linalg {

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  FM_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::Compute(a));
  return chol.Solve(b);
}

Result<Vector> SolveGeneral(const Matrix& a, const Vector& b) {
  FM_ASSIGN_OR_RETURN(Lu lu, Lu::Compute(a));
  return lu.Solve(b);
}

Result<Vector> SolveSymmetricPseudo(const Matrix& a, const Vector& b,
                                    double rcond) {
  FM_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSym(a));
  const size_t n = eig.eigenvalues.size();
  double max_abs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(eig.eigenvalues[i]));
  }
  const double cutoff = rcond * max_abs;
  // x = Σ_k (q_kᵀ b / λ_k) q_k over the retained spectrum.
  Vector x(n);
  for (size_t k = 0; k < n; ++k) {
    const double lambda = eig.eigenvalues[k];
    if (std::fabs(lambda) <= cutoff) continue;
    const Vector qk = eig.eigenvectors.RowVector(k);
    x.Axpy(Dot(qk, b) / lambda, qk);
  }
  return x;
}

Result<Vector> LeastSquares(const Matrix& x, const Vector& y, double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("LeastSquares: row/label count mismatch");
  }
  Matrix gram = Gram(x);
  if (ridge > 0.0) gram.AddToDiagonal(ridge);
  const Vector xty = MatTVec(x, y);
  Result<Vector> spd = SolveSpd(gram, xty);
  if (spd.ok()) return spd;
  // Gram matrix singular (collinear columns): fall back to the minimum-norm
  // pseudo-inverse solution.
  return SolveSymmetricPseudo(gram, xty);
}

}  // namespace fm::linalg
