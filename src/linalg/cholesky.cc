#include "linalg/cholesky.h"

#include <cmath>

#include "common/logging.h"

namespace fm::linalg {

Result<Cholesky> Cholesky::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (!a.IsSymmetric(1e-9 * (1.0 + a.MaxAbs()))) {
    return Status::InvalidArgument("Cholesky requires a symmetric matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return Status::NumericalError(
          "matrix is not positive definite (non-positive pivot at column " +
          std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::Solve(const Vector& b) const {
  const size_t n = l_.rows();
  FM_CHECK(b.size() == n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  // Back substitution: Lᵀ x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  FM_CHECK(b.rows() == l_.rows());
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.ColVector(c));
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double sum = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

bool IsPositiveDefinite(const Matrix& a) {
  return Cholesky::Compute(a).ok();
}

}  // namespace fm::linalg
