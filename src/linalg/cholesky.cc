#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace fm::linalg {

namespace {

// Blocked right-looking factorization, in place on the lower triangle of
// `l` (which on entry holds the lower triangle of A; the upper triangle is
// zero). For each kCholeskyNb-wide column block: factor the diagonal block
// (left-looking within the block — contributions from columns left of the
// block were already subtracted by earlier trailing updates), solve the
// panel below it, then apply the rank-b trailing update as a grouped
// symmetric subtract. Per element every product l(i,k)·l(j,k) is consumed
// in ascending-k order with one grouped subtract per block, in both the
// blocked and the reference mode, so the factors agree bit for bit; for
// n ≤ kCholeskyNb (one block) this reduces exactly to the classic scalar
// left-looking loop. Returns the first non-positive pivot column, or n on
// success.
size_t FactorLowerInPlace(Matrix& l, bool blocked) {
  const size_t n = l.rows();
  for (size_t jb = 0; jb < n; jb += kernels::kCholeskyNb) {
    const size_t b = std::min(kernels::kCholeskyNb, n - jb);
    // Diagonal block.
    for (size_t j = jb; j < jb + b; ++j) {
      double diag = l(j, j);
      for (size_t k = jb; k < j; ++k) diag -= l(j, k) * l(j, k);
      if (!(diag > 0.0) || !std::isfinite(diag)) return j;
      const double ljj = std::sqrt(diag);
      l(j, j) = ljj;
      for (size_t i = j + 1; i < jb + b; ++i) {
        double sum = l(i, j);
        for (size_t k = jb; k < j; ++k) sum -= l(i, k) * l(j, k);
        l(i, j) = sum / ljj;
      }
    }
    if (jb + b >= n) break;
    // Panel solve: rows below the diagonal block against Lᵀ of the block.
    for (size_t i = jb + b; i < n; ++i) {
      for (size_t j = jb; j < jb + b; ++j) {
        double sum = l(i, j);
        for (size_t k = jb; k < j; ++k) sum -= l(i, k) * l(j, k);
        l(i, j) = sum / l(j, j);
      }
    }
    // Trailing update: A' -= P·Pᵀ over the remaining lower triangle.
    const size_t nt = n - (jb + b);
    const double* panel = l.Row(jb + b) + jb;
    double* trailing = l.Row(jb + b) + (jb + b);
    if (blocked) {
      kernels::SyrkLowerSubtract(panel, n, nt, b, trailing, n);
    } else {
      kernels::RefSyrkLowerSubtract(panel, n, nt, b, trailing, n);
    }
  }
  return n;
}

}  // namespace

Result<Cholesky> Cholesky::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (!a.IsSymmetric(1e-9 * (1.0 + a.MaxAbs()))) {
    return Status::InvalidArgument("Cholesky requires a symmetric matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) l(i, j) = a(i, j);
  }
  const size_t pivot = FactorLowerInPlace(l, kernels::BlockedEnabled());
  if (pivot < n) {
    return Status::NumericalError(
        "matrix is not positive definite (non-positive pivot at column " +
        std::to_string(pivot) + ")");
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::Solve(const Vector& b) const {
  const size_t n = l_.rows();
  FM_CHECK(b.size() == n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  // Back substitution: Lᵀ x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l_(k, ii) * x[k];
    x[ii] = sum / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  FM_CHECK(b.rows() == l_.rows());
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.ColVector(c));
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double sum = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) sum += std::log(l_(i, i));
  return 2.0 * sum;
}

bool IsPositiveDefinite(const Matrix& a) {
  return Cholesky::Compute(a).ok();
}

}  // namespace fm::linalg
