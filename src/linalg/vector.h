#ifndef FM_LINALG_VECTOR_H_
#define FM_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"

namespace fm::linalg {

/// Dense column vector of doubles.
///
/// A thin, value-semantic wrapper over contiguous storage with the
/// element-wise and BLAS-1 style operations the rest of the library needs.
/// All binary operations require matching sizes and abort on mismatch (size
/// mismatches are programmer errors, not data errors).
class Vector {
 public:
  /// Constructs an empty vector.
  Vector() = default;

  /// Constructs a zero vector of dimension `n`.
  explicit Vector(size_t n) : data_(n, 0.0) {}

  /// Constructs a vector of dimension `n` filled with `value`.
  Vector(size_t n, double value) : data_(n, value) {}

  /// Constructs from an initializer list: Vector v = {1.0, 2.0};
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Constructs from existing storage.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  Vector(const Vector&) = default;
  Vector& operator=(const Vector&) = default;
  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;

  /// Number of elements.
  size_t size() const { return data_.size(); }

  /// True iff the vector has zero elements.
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  /// Element access, bounds-checked in Debug/ASan builds (FM_DCHECK); the
  /// check is compiled out of Release hot paths.
  double At(size_t i) const {
    FM_DCHECK(i < data_.size());
    return data_[i];
  }

  /// Underlying storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }
  const double* raw() const { return data_.data(); }
  double* raw() { return data_.data(); }

  // Iteration support.
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Sets every element to `value`.
  void Fill(double value);

  /// Resizes, zero-filling new elements.
  void Resize(size_t n) { data_.resize(n, 0.0); }

  // In-place arithmetic.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// this += scalar * other  (BLAS axpy).
  void Axpy(double scalar, const Vector& other);

  /// Euclidean norm.
  double Norm2() const;

  /// L1 norm (sum of absolute values).
  double Norm1() const;

  /// Max-absolute-value norm.
  double NormInf() const;

  /// Sum of elements.
  double Sum() const;

  /// "[a, b, c]" with 6 significant digits; for logging and test messages.
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

// Non-member arithmetic (value-returning).
Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, double scalar);
Vector operator*(double scalar, Vector v);
Vector operator/(Vector v, double scalar);
Vector operator-(Vector v);

/// Dot product; aborts on size mismatch.
double Dot(const Vector& a, const Vector& b);

/// Element-wise product.
Vector Hadamard(const Vector& a, const Vector& b);

/// Max |a[i] - b[i]|; aborts on size mismatch.
double MaxAbsDiff(const Vector& a, const Vector& b);

/// True iff sizes match and all elements are within `tol` of each other.
bool AllClose(const Vector& a, const Vector& b, double tol);

}  // namespace fm::linalg

#endif  // FM_LINALG_VECTOR_H_
