#ifndef FM_LINALG_LU_H_
#define FM_LINALG_LU_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fm::linalg {

/// LU factorization with partial pivoting: P A = L U.
///
/// General square solver used for non-symmetric systems and as an
/// independent cross-check of the Cholesky path in tests.
class Lu {
 public:
  /// Factorizes `a` (must be square). Fails with kNumericalError when `a` is
  /// numerically singular.
  static Result<Lu> Compute(const Matrix& a);

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix Solve(const Matrix& b) const;

  /// Returns A⁻¹ (solve against the identity).
  Matrix Inverse() const;

  /// det(A), including the pivot sign.
  double Determinant() const;

 private:
  Lu(Matrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}

  Matrix lu_;                 // packed L (unit lower) and U
  std::vector<size_t> perm_;  // row permutation
  int sign_;                  // permutation parity, for the determinant
};

}  // namespace fm::linalg

#endif  // FM_LINALG_LU_H_
