#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace fm::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    FM_CHECK(row.size() == cols_);
    for (double x : row) data_.push_back(x);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double Matrix::At(size_t r, size_t c) const {
  FM_CHECK(r < rows_ && c < cols_);
  return (*this)(r, c);
}

Vector Matrix::RowVector(size_t r) const {
  FM_CHECK(r < rows_);
  Vector v(cols_);
  for (size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::ColVector(size_t c) const {
  FM_CHECK(c < cols_);
  Vector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  FM_CHECK(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::Fill(double value) {
  for (auto& x : data_) x = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  FM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  FM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

void Matrix::AddToDiagonal(double value) {
  FM_CHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

void Matrix::SymmetrizeFromUpper() {
  FM_CHECK(rows_ == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) (*this)(c, r) = (*this)(r, c);
  }
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

std::string Matrix::ToString() const {
  std::string out;
  char buf[32];
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%.6g", (*this)(r, c));
      if (c) out += ", ";
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(Matrix m, double scalar) {
  m *= scalar;
  return m;
}

Matrix operator*(double scalar, Matrix m) {
  m *= scalar;
  return m;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  FM_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order for row-major cache friendliness.
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      double* orow = out.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  FM_CHECK(a.cols() == x.size());
  Vector out(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    double sum = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) sum += row[j] * x[j];
    out[i] = sum;
  }
  return out;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  FM_CHECK(a.rows() == x.size());
  Vector out(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < a.cols(); ++j) out[j] += xi * row[j];
  }
  return out;
}

Matrix Gram(const Matrix& a) {
  const size_t d = a.cols();
  Matrix out(d, d);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    for (size_t j = 0; j < d; ++j) {
      const double xj = row[j];
      if (xj == 0.0) continue;
      double* orow = out.Row(j);
      for (size_t k = j; k < d; ++k) orow[k] += xj * row[k];
    }
  }
  out.SymmetrizeFromUpper();
  return out;
}

void AddOuterProduct(Matrix& target, const Vector& x, double scale) {
  FM_CHECK(target.rows() == x.size() && target.cols() == x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double sxi = scale * x[i];
    if (sxi == 0.0) continue;
    double* row = target.Row(i);
    for (size_t j = 0; j < x.size(); ++j) row[j] += sxi * x[j];
  }
}

double QuadraticForm(const Matrix& m, const Vector& x) {
  FM_CHECK(m.rows() == x.size() && m.cols() == x.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double* row = m.Row(i);
    double inner = 0.0;
    for (size_t j = 0; j < x.size(); ++j) inner += row[j] * x[j];
    sum += x[i] * inner;
  }
  return sum;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    best = std::max(best, std::fabs(a.data()[i] - b.data()[i]));
  }
  return best;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return MaxAbsDiff(a, b) <= tol;
}

}  // namespace fm::linalg
