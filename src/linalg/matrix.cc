#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace fm::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    FM_CHECK(row.size() == cols_);
    for (double x : row) data_.push_back(x);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::RowVector(size_t r) const {
  FM_DCHECK(r < rows_);
  Vector v(cols_);
  const auto row = RowSpan(r);
  std::copy(row.begin(), row.end(), v.data().begin());
  return v;
}

Vector Matrix::ColVector(size_t c) const {
  FM_DCHECK(c < cols_);
  Vector v(rows_);
  const double* src = data_.data() + c;
  for (size_t r = 0; r < rows_; ++r) v[r] = src[r * cols_];
  return v;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  FM_DCHECK(r < rows_);
  FM_CHECK(v.size() == cols_);
  std::copy(v.begin(), v.end(), RowSpan(r).begin());
}

void Matrix::Fill(double value) {
  for (auto& x : data_) x = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  FM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  FM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

void Matrix::AddToDiagonal(double value) {
  FM_CHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

Matrix Matrix::Transposed() const {
  // Cache-blocked tiles: both the read and the write stay within a
  // 32×32-element working set instead of striding a full row/column per
  // element. Pure copies, so the result is exact for any tiling.
  constexpr size_t kTile = 32;
  Matrix t(cols_, rows_);
  for (size_t r0 = 0; r0 < rows_; r0 += kTile) {
    const size_t r1 = std::min(rows_, r0 + kTile);
    for (size_t c0 = 0; c0 < cols_; c0 += kTile) {
      const size_t c1 = std::min(cols_, c0 + kTile);
      for (size_t r = r0; r < r1; ++r) {
        for (size_t c = c0; c < c1; ++c) t(c, r) = (*this)(r, c);
      }
    }
  }
  return t;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

void Matrix::SymmetrizeFromUpper() {
  FM_CHECK(rows_ == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = r + 1; c < cols_; ++c) (*this)(c, r) = (*this)(r, c);
  }
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

std::string Matrix::ToString() const {
  std::string out;
  char buf[32];
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%.6g", (*this)(r, c));
      if (c) out += ", ";
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) {
  lhs += rhs;
  return lhs;
}

Matrix operator-(Matrix lhs, const Matrix& rhs) {
  lhs -= rhs;
  return lhs;
}

Matrix operator*(Matrix m, double scalar) {
  m *= scalar;
  return m;
}

Matrix operator*(double scalar, Matrix m) {
  m *= scalar;
  return m;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  FM_CHECK(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  // Register-tiled, k-panel-blocked GEMM; the scalar reference follows the
  // identical summation grouping, so the two modes agree bit for bit (see
  // linalg/kernels.h).
  if (kernels::BlockedEnabled()) {
    kernels::GemmAccumulate(a.data().data(), a.cols(), b.data().data(),
                            b.cols(), out.data().data(), out.cols(), a.rows(),
                            a.cols(), b.cols());
  } else {
    kernels::RefGemmAccumulate(a.data().data(), a.cols(), b.data().data(),
                               b.cols(), out.data().data(), out.cols(),
                               a.rows(), a.cols(), b.cols());
  }
  return out;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  FM_CHECK(a.cols() == x.size());
  Vector out(a.rows());
  if (kernels::BlockedEnabled()) {
    kernels::MatVec(a.data().data(), a.cols(), a.rows(), a.cols(), x.raw(),
                    out.raw());
  } else {
    kernels::RefMatVec(a.data().data(), a.cols(), a.rows(), a.cols(), x.raw(),
                       out.raw());
  }
  return out;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  FM_CHECK(a.rows() == x.size());
  Vector out(a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < a.cols(); ++j) out[j] += xi * row[j];
  }
  return out;
}

Matrix Gram(const Matrix& a) {
  const size_t d = a.cols();
  Matrix out(d, d);
  // Rank-k symmetric update over kSyrkRowPanel-row panels; only the upper
  // triangle is computed, then mirrored.
  if (kernels::BlockedEnabled()) {
    kernels::SyrkUpperAccumulate(a.data().data(), d, a.rows(), d,
                                 out.data().data(), d);
  } else {
    kernels::RefSyrkUpperAccumulate(a.data().data(), d, a.rows(), d,
                                    out.data().data(), d);
  }
  out.SymmetrizeFromUpper();
  return out;
}

void AddOuterProduct(Matrix& target, const Vector& x, double scale) {
  FM_CHECK(target.rows() == x.size() && target.cols() == x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const double sxi = scale * x[i];
    if (sxi == 0.0) continue;
    double* row = target.Row(i);
    for (size_t j = 0; j < x.size(); ++j) row[j] += sxi * x[j];
  }
}

double QuadraticForm(const Matrix& m, const Vector& x) {
  FM_CHECK(m.rows() == x.size() && m.cols() == x.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * kernels::Dot(m.Row(i), x.raw(), x.size());
  }
  return sum;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FM_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    best = std::max(best, std::fabs(a.data()[i] - b.data()[i]));
  }
  return best;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return MaxAbsDiff(a, b) <= tol;
}

}  // namespace fm::linalg
