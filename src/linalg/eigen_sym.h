#ifndef FM_LINALG_EIGEN_SYM_H_
#define FM_LINALG_EIGEN_SYM_H_

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fm::linalg {

/// Eigendecomposition A = Qᵀ Λ Q of a real symmetric matrix, where the rows
/// of Q are orthonormal eigenvectors (the paper's §6.2 convention) and Λ is
/// diagonal with the corresponding eigenvalues.
struct SymmetricEigen {
  /// Eigenvalues in descending order.
  Vector eigenvalues;
  /// Row i is the unit eigenvector for eigenvalues[i]; Q Qᵀ = I.
  Matrix eigenvectors;

  /// Reconstructs Qᵀ Λ Q (testing / diagnostics).
  Matrix Reconstruct() const;
};

/// Computes the full eigendecomposition of symmetric `a` with the cyclic
/// Jacobi rotation method. Robust and accurate for the moderate dimensions
/// used in regression (d up to a few hundred).
///
/// Fails with kInvalidArgument when `a` is not square/symmetric, and with
/// kNumericalError if the sweep limit is exceeded (pathological input).
Result<SymmetricEigen> EigenSym(const Matrix& a, int max_sweeps = 64);

}  // namespace fm::linalg

#endif  // FM_LINALG_EIGEN_SYM_H_
