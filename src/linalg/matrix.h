#ifndef FM_LINALG_MATRIX_H_
#define FM_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "linalg/vector.h"

namespace fm::linalg {

/// Lightweight contiguous view — a C++17 stand-in for std::span<double>.
/// Used for zero-copy row access on the kernel hot paths
/// (src/linalg/kernels.h).
template <typename T>
struct Span {
  T* ptr = nullptr;
  size_t len = 0;

  T* data() const { return ptr; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  T* begin() const { return ptr; }
  T* end() const { return ptr + len; }
  T& operator[](size_t i) const { return ptr[i]; }
};

/// Dense row-major matrix of doubles.
///
/// Value-semantic, contiguous storage. Dimension mismatches abort (programmer
/// error); numerically fallible operations (factorizations) live in the
/// decomposition headers and return fm::Status / fm::Result.
class Matrix {
 public:
  /// Constructs an empty (0x0) matrix.
  Matrix() = default;

  /// Constructs a zero matrix with `rows` x `cols`.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Constructs from nested initializer lists:
  /// Matrix m = {{1, 2}, {3, 4}}; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// The n x n identity.
  static Matrix Identity(size_t n);

  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const Vector& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  /// Element access, bounds-checked in Debug/ASan builds (FM_DCHECK); the
  /// check is compiled out of Release hot paths.
  double At(size_t r, size_t c) const {
    FM_DCHECK(r < rows_ && c < cols_);
    return (*this)(r, c);
  }

  /// Pointer to the start of row `r`.
  const double* Row(size_t r) const { return data_.data() + r * cols_; }
  double* Row(size_t r) { return data_.data() + r * cols_; }

  /// Contiguous zero-copy view of row `r` (the kernel-layer accessor).
  Span<const double> RowSpan(size_t r) const {
    FM_DCHECK(r < rows_);
    return {Row(r), cols_};
  }
  Span<double> RowSpan(size_t r) {
    FM_DCHECK(r < rows_);
    return {Row(r), cols_};
  }

  /// Copies row `r` into a Vector.
  Vector RowVector(size_t r) const;

  /// Copies column `c` into a Vector.
  Vector ColVector(size_t c) const;

  /// Sets row `r` from `v` (sizes must match).
  void SetRow(size_t r, const Vector& v);

  /// Underlying row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Sets every element to `value`.
  void Fill(double value);

  // In-place arithmetic.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Adds `value` to every main-diagonal entry (ridge shift M + value*I).
  void AddToDiagonal(double value);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// True iff square and |m(i,j) - m(j,i)| <= tol for all i, j.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Copies the upper triangle onto the lower triangle (enforces symmetry).
  /// Requires a square matrix.
  void SymmetrizeFromUpper();

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max absolute entry.
  double MaxAbs() const;

  /// Multi-line string with 6 significant digits; for logging and tests.
  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// Non-member arithmetic.
Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double scalar);
Matrix operator*(double scalar, Matrix m);

/// Matrix product; aborts when inner dimensions mismatch.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Matrix-vector product a*x.
Vector MatVec(const Matrix& a, const Vector& x);

/// Transposed matrix-vector product aᵀ*x.
Vector MatTVec(const Matrix& a, const Vector& x);

/// aᵀ*a, computed directly (the Gram matrix used by both regressions).
/// Exploits symmetry: only the upper triangle is computed, then mirrored.
Matrix Gram(const Matrix& a);

/// Rank-1 update target += scale * x xᵀ (target must be square, matching x).
void AddOuterProduct(Matrix& target, const Vector& x, double scale);

/// Quadratic form xᵀ m x (m square, matching x).
double QuadraticForm(const Matrix& m, const Vector& x);

/// Max |a(i,j) - b(i,j)|; aborts on shape mismatch.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

/// True iff shapes match and all entries are within `tol`.
bool AllClose(const Matrix& a, const Matrix& b, double tol);

}  // namespace fm::linalg

#endif  // FM_LINALG_MATRIX_H_
