#ifndef FM_LINALG_CHOLESKY_H_
#define FM_LINALG_CHOLESKY_H_

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fm::linalg {

/// Cholesky factorization A = L Lᵀ of a symmetric positive-definite matrix.
///
/// The factorization doubles as the library's positive-definiteness test:
/// `Cholesky::Compute` fails with kNumericalError exactly when A is not
/// (numerically) positive definite — this is how the Functional Mechanism's
/// post-processing decides whether spectral trimming is needed.
class Cholesky {
 public:
  /// Factorizes `a` (must be square and symmetric). Returns kNumericalError
  /// when a non-positive pivot is encountered (A not positive definite),
  /// kInvalidArgument when `a` is not square/symmetric.
  static Result<Cholesky> Compute(const Matrix& a);

  /// The lower-triangular factor L.
  const Matrix& L() const { return l_; }

  /// Solves A x = b via the two triangular solves. `b` must match A's size.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix Solve(const Matrix& b) const;

  /// log(det A) = 2 Σ log L(i,i); always finite for a valid factorization.
  double LogDeterminant() const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}

  Matrix l_;
};

/// Convenience: true iff `a` is symmetric positive definite (Cholesky
/// succeeds).
bool IsPositiveDefinite(const Matrix& a);

}  // namespace fm::linalg

#endif  // FM_LINALG_CHOLESKY_H_
