#ifndef FM_LINALG_SOLVE_H_
#define FM_LINALG_SOLVE_H_

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fm::linalg {

/// Solves the SPD system A x = b via Cholesky. Fails when A is not positive
/// definite.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Solves the general square system A x = b via partially-pivoted LU. Fails
/// when A is singular.
Result<Vector> SolveGeneral(const Matrix& a, const Vector& b);

/// Minimum-norm least-squares solve of symmetric A x = b through the
/// eigendecomposition: eigencomponents with |λ| <= rcond * max|λ| are
/// dropped. This is the solver behind §6.2 spectral trimming's
/// "solution to Q'ω = V is not unique" step.
Result<Vector> SolveSymmetricPseudo(const Matrix& a, const Vector& b,
                                    double rcond = 1e-12);

/// Ordinary least squares: minimizes ‖X w − y‖₂² through the normal
/// equations XᵀX w = Xᵀy (ridge-stabilized by `ridge` ≥ 0 on the diagonal;
/// pass 0 for exact OLS). Fails when the Gram matrix is singular and
/// `ridge` == 0.
Result<Vector> LeastSquares(const Matrix& x, const Vector& y,
                            double ridge = 0.0);

}  // namespace fm::linalg

#endif  // FM_LINALG_SOLVE_H_
