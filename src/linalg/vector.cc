#include "linalg/vector.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "linalg/kernels.h"

namespace fm::linalg {

void Vector::Fill(double value) {
  for (auto& x : data_) x = value;
}

Vector& Vector::operator+=(const Vector& other) {
  FM_CHECK(size() == other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  FM_CHECK(size() == other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  for (auto& x : data_) x /= scalar;
  return *this;
}

void Vector::Axpy(double scalar, const Vector& other) {
  FM_CHECK(size() == other.size());
  kernels::Axpy(data_.data(), scalar, other.data_.data(), data_.size());
}

double Vector::Norm2() const {
  // Scaled accumulation to avoid overflow for large magnitudes.
  double scale = 0.0;
  double ssq = 1.0;
  for (double x : data_) {
    if (x == 0.0) continue;
    const double ax = std::fabs(x);
    if (scale < ax) {
      ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
      scale = ax;
    } else {
      ssq += (ax / scale) * (ax / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double Vector::Norm1() const {
  double sum = 0.0;
  for (double x : data_) sum += std::fabs(x);
  return sum;
}

double Vector::NormInf() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Vector::Sum() const {
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum;
}

std::string Vector::ToString() const {
  std::string out = "[";
  char buf[32];
  for (size_t i = 0; i < data_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", data_[i]);
    if (i) out += ", ";
    out += buf;
  }
  out += "]";
  return out;
}

Vector operator+(Vector lhs, const Vector& rhs) {
  lhs += rhs;
  return lhs;
}

Vector operator-(Vector lhs, const Vector& rhs) {
  lhs -= rhs;
  return lhs;
}

Vector operator*(Vector v, double scalar) {
  v *= scalar;
  return v;
}

Vector operator*(double scalar, Vector v) {
  v *= scalar;
  return v;
}

Vector operator/(Vector v, double scalar) {
  v /= scalar;
  return v;
}

Vector operator-(Vector v) {
  v *= -1.0;
  return v;
}

double Dot(const Vector& a, const Vector& b) {
  FM_CHECK(a.size() == b.size());
  // kernels::Dot is a strictly sequential reduction — same bits as the
  // naive loop in both FM_BLOCKED_LINALG modes.
  return kernels::Dot(a.raw(), b.raw(), a.size());
}

Vector Hadamard(const Vector& a, const Vector& b) {
  FM_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

double MaxAbsDiff(const Vector& a, const Vector& b) {
  FM_CHECK(a.size() == b.size());
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

bool AllClose(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  return MaxAbsDiff(a, b) <= tol;
}

}  // namespace fm::linalg
