#include "linalg/qr.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/solve.h"

namespace fm::linalg {

Result<Qr> Qr::Compute(const Matrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("QR requires rows >= cols");
  }
  if (n == 0) {
    return Status::InvalidArgument("QR requires a non-empty matrix");
  }
  Matrix packed = a;
  std::vector<double> tau(n, 0.0);
  std::vector<double> v0(n, 0.0);

  for (size_t k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating column k below the
    // diagonal: v = x ± ‖x‖e₁ (sign chosen to avoid cancellation).
    double norm_sq = 0.0;
    for (size_t i = k; i < m; ++i) norm_sq += packed(i, k) * packed(i, k);
    const double norm = std::sqrt(norm_sq);
    if (!(norm > 0.0)) {
      return Status::NumericalError("rank-deficient column " +
                                    std::to_string(k));
    }
    const double alpha = packed(k, k) >= 0.0 ? -norm : norm;
    const double v0_k = packed(k, k) - alpha;
    // Standard beta = 2 / (vᵀv) with v = (v0_k, x_{k+1..m}).
    double vtv = v0_k * v0_k;
    for (size_t i = k + 1; i < m; ++i) vtv += packed(i, k) * packed(i, k);
    if (!(vtv > 0.0)) {
      return Status::NumericalError("degenerate reflector at column " +
                                    std::to_string(k));
    }
    const double beta = 2.0 / vtv;

    // Apply (I − beta v vᵀ) to the trailing columns.
    for (size_t j = k + 1; j < n; ++j) {
      double dot = v0_k * packed(k, j);
      for (size_t i = k + 1; i < m; ++i) dot += packed(i, k) * packed(i, j);
      const double scale = beta * dot;
      packed(k, j) -= scale * v0_k;
      for (size_t i = k + 1; i < m; ++i) {
        packed(i, j) -= scale * packed(i, k);
      }
    }

    // R's diagonal entry replaces the annihilated column head; the reflector
    // tail stays below the diagonal, its head and scale go to the side.
    packed(k, k) = alpha;
    tau[k] = beta;
    v0[k] = v0_k;
  }
  return Qr(std::move(packed), std::move(tau), std::move(v0));
}

Matrix Qr::R() const {
  const size_t n = packed_.cols();
  Matrix r(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) r(i, j) = packed_(i, j);
  }
  return r;
}

Vector Qr::ApplyQTranspose(const Vector& b) const {
  const size_t m = packed_.rows();
  const size_t n = packed_.cols();
  FM_CHECK(b.size() == m);
  Vector y = b;
  for (size_t k = 0; k < n; ++k) {
    double dot = v0_[k] * y[k];
    for (size_t i = k + 1; i < m; ++i) dot += packed_(i, k) * y[i];
    const double scale = tau_[k] * dot;
    y[k] -= scale * v0_[k];
    for (size_t i = k + 1; i < m; ++i) y[i] -= scale * packed_(i, k);
  }
  return y;
}

Vector Qr::SolveLeastSquares(const Vector& b) const {
  const size_t n = packed_.cols();
  const Vector y = ApplyQTranspose(b);
  // Back substitution on R x = y[0..n).
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t j = ii + 1; j < n; ++j) sum -= packed_(ii, j) * x[j];
    x[ii] = sum / packed_(ii, ii);
  }
  return x;
}

double Qr::AbsDeterminant() const {
  double det = 1.0;
  for (size_t i = 0; i < packed_.cols(); ++i) {
    det *= std::fabs(packed_(i, i));
  }
  return det;
}

Result<Vector> LeastSquaresQr(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("LeastSquaresQr: shape mismatch");
  }
  Result<Qr> qr = Qr::Compute(a);
  if (qr.ok()) return qr.ValueOrDie().SolveLeastSquares(b);
  // Rank-deficient: minimum-norm solution through the Gram pseudo-inverse.
  return SolveSymmetricPseudo(Gram(a), MatTVec(a, b));
}

}  // namespace fm::linalg
