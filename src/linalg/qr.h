#ifndef FM_LINALG_QR_H_
#define FM_LINALG_QR_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace fm::linalg {

/// Householder QR factorization A = Q R for m × n matrices with m ≥ n.
///
/// Used for numerically stable least squares: solving min ‖Ax − b‖ through
/// QR avoids squaring the condition number the way the normal equations do.
/// The factorization stores the Householder reflectors in packed form; Q is
/// applied implicitly.
class Qr {
 public:
  /// Factorizes `a` (m ≥ n required). Fails with kNumericalError when a
  /// column is exactly rank-deficient.
  static Result<Qr> Compute(const Matrix& a);

  /// The upper-triangular n × n factor R.
  Matrix R() const;

  /// Applies Qᵀ to a length-m vector.
  Vector ApplyQTranspose(const Vector& b) const;

  /// Solves the least-squares problem min ‖Ax − b‖₂ (b of length m).
  Vector SolveLeastSquares(const Vector& b) const;

  /// |det R| = Π |r_ii| — for square inputs this is |det A|.
  double AbsDeterminant() const;

 private:
  Qr(Matrix packed, std::vector<double> tau, std::vector<double> v0)
      : packed_(std::move(packed)), tau_(std::move(tau)), v0_(std::move(v0)) {}

  Matrix packed_;            // R in the upper triangle, reflector tails below
  std::vector<double> tau_;  // reflector scales beta_k = 2 / vᵀv
  std::vector<double> v0_;   // leading reflector components
};

/// Stable least squares via Householder QR (falls back to the eigenvalue
/// pseudo-inverse when A is rank-deficient).
Result<Vector> LeastSquaresQr(const Matrix& a, const Vector& b);

}  // namespace fm::linalg

#endif  // FM_LINALG_QR_H_
