#include "linalg/lu.h"

#include <cmath>

#include "common/logging.h"

namespace fm::linalg {

Result<Lu> Lu::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double cand = std::fabs(lu(i, k));
      if (cand > best) {
        best = cand;
        pivot = i;
      }
    }
    if (!(best > 0.0) || !std::isfinite(best)) {
      return Status::NumericalError("matrix is singular at column " +
                                    std::to_string(k));
    }
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[k], perm[pivot]);
      sign = -sign;
    }
    const double pivot_value = lu(k, k);
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) / pivot_value;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) lu(i, c) -= factor * lu(k, c);
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

Vector Lu::Solve(const Vector& b) const {
  const size_t n = lu_.rows();
  FM_CHECK(b.size() == n);
  // Apply permutation, then forward substitution with unit-lower L.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (size_t k = 0; k < i; ++k) sum -= lu_(i, k) * y[k];
    y[i] = sum;
  }
  // Back substitution with U.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= lu_(ii, k) * x[k];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::Solve(const Matrix& b) const {
  FM_CHECK(b.rows() == lu_.rows());
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.ColVector(c));
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

Matrix Lu::Inverse() const { return Solve(Matrix::Identity(lu_.rows())); }

double Lu::Determinant() const {
  double det = sign_;
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

}  // namespace fm::linalg
