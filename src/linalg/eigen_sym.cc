#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace fm::linalg {

Matrix SymmetricEigen::Reconstruct() const {
  const size_t n = eigenvalues.size();
  Matrix out(n, n);
  // Qᵀ Λ Q = Σ_k λ_k q_k q_kᵀ with q_k the k-th row of Q.
  for (size_t k = 0; k < n; ++k) {
    AddOuterProduct(out, eigenvectors.RowVector(k), eigenvalues[k]);
  }
  return out;
}

Result<SymmetricEigen> EigenSym(const Matrix& a, int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("EigenSym requires a square matrix");
  }
  if (!a.IsSymmetric(1e-9 * (1.0 + a.MaxAbs()))) {
    return Status::InvalidArgument("EigenSym requires a symmetric matrix");
  }
  const size_t n = a.rows();
  Matrix m = a;        // working copy, driven to diagonal
  Matrix v = Matrix::Identity(n);  // accumulated rotations, columns = eigvecs

  auto off_diagonal_norm = [&]() {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) sum += m(i, j) * m(i, j);
    }
    return std::sqrt(2.0 * sum);
  };

  const double scale = std::max(1.0, a.MaxAbs());
  const double tol = 1e-14 * scale * static_cast<double>(n);

  int sweep = 0;
  while (off_diagonal_norm() > tol) {
    if (++sweep > max_sweeps) {
      return Status::NumericalError("Jacobi sweeps did not converge");
    }
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        // Stable rotation computation (Golub & Van Loan).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Update rows/columns p and q of the symmetric working matrix.
        for (size_t k = 0; k < n; ++k) {
          if (k == p || k == q) continue;
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(p, k) = m(k, p);
          m(k, q) = s * mkp + c * mkq;
          m(q, k) = m(k, q);
        }
        m(p, p) = app - t * apq;
        m(q, q) = aqq + t * apq;
        m(p, q) = 0.0;
        m(q, p) = 0.0;

        // Accumulate the rotation into the eigenvector columns.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return m(i, i) > m(j, j); });

  SymmetricEigen out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t r = 0; r < n; ++r) {
    const size_t src = order[r];
    out.eigenvalues[r] = m(src, src);
    // Column `src` of v is the eigenvector; store as row r of Q.
    for (size_t cidx = 0; cidx < n; ++cidx) {
      out.eigenvectors(r, cidx) = v(cidx, src);
    }
  }
  return out;
}

}  // namespace fm::linalg
